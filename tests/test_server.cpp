/// Tests for mcs::server -- the JSON protocol layer (parser, request
/// validation, response builders) and the JobServer itself: streaming stage
/// reports, weighted-deficit fairness, per-job cancellation and timeouts,
/// every flow error path (the daemon must stay healthy), drain semantics,
/// and the multi-tenant determinism contract: concurrent jobs from
/// *different* flows produce networks bit-identical to their serial runs
/// (the `thread_local NpnDatabase::shared` regression).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "mcs/ckpt/snapshot.hpp"
#include "mcs/fail/fail.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/server/journal.hpp"
#include "mcs/server/json.hpp"
#include "mcs/server/protocol.hpp"
#include "mcs/server/server.hpp"

namespace mcs::server {
namespace {

using namespace std::chrono_literals;

// --- json -------------------------------------------------------------------

TEST(Json, ParsesObjectsArraysScalars) {
  const Json v = Json::parse(
      R"({"a": 1.5, "b": "x\n\"y\"", "c": [true, false, null], "d": {"e": -3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  EXPECT_EQ(v.find("b")->as_string(), "x\n\"y\"");
  ASSERT_TRUE(v.find("c")->is_array());
  EXPECT_EQ(v.find("c")->items().size(), 3u);
  EXPECT_TRUE(v.find("c")->items()[0].as_bool());
  EXPECT_TRUE(v.find("c")->items()[2].is_null());
  EXPECT_EQ(v.find("d")->find("e")->as_int(), -3);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, UnicodeEscapesBecomeUtf8) {
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{'single': 1}"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"bad \\q escape\""), JsonError);
  EXPECT_THROW(Json::parse("01x"), JsonError);
  EXPECT_THROW(Json::parse(R"("\ud800")"), JsonError);  // lone surrogate
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);  // depth bound
}

TEST(Json, TypeMismatchThrows) {
  const Json v = Json::parse(R"({"n": 1})");
  EXPECT_THROW(v.find("n")->as_string(), JsonError);
  EXPECT_THROW(v.as_number(), JsonError);
}

TEST(Json, QuoteEscapesControlBytes) {
  EXPECT_EQ(json_quote("a\"b\\c\nd\x01"), R"("a\"b\\c\nd\u0001")");
  // Round-trip: whatever json_quote emits must parse back to the input.
  const std::string nasty = "tab\t nl\n cr\r quote\" back\\ bell\x07";
  EXPECT_EQ(Json::parse(json_quote(nasty)).as_string(), nasty);
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesSubmitWithAllFields) {
  const Request req = parse_request(
      R"({"type": "submit", "id": "j1", "flow": "gen:adder,bits=8",)"
      R"( "timeout_ms": 500, "threads": 2, "weight": 2.5,)"
      R"( "input": {"format": "aiger", "text": "aag 0 0 0 0 0\n"}})");
  EXPECT_EQ(req.kind, Request::Kind::kSubmit);
  EXPECT_EQ(req.id, "j1");
  EXPECT_EQ(req.flow_spec, "gen:adder,bits=8");
  EXPECT_EQ(req.timeout_ms, 500);
  EXPECT_EQ(req.threads, 2);
  EXPECT_DOUBLE_EQ(req.weight, 2.5);
  EXPECT_EQ(req.input_format, "aiger");
  EXPECT_EQ(req.input_text, "aag 0 0 0 0 0\n");
}

TEST(Protocol, SubmitRoundTripsThroughBuilder) {
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = "weird \"id\"\n";
  req.flow_spec = "gen:adder,bits=8; compress2rs";
  req.weight = 0.5;
  req.input_format = "blif";
  req.input_text = ".model m\n.end\n";
  const Request back = parse_request(submit_line(req));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.flow_spec, req.flow_spec);
  EXPECT_DOUBLE_EQ(back.weight, req.weight);
  EXPECT_EQ(back.input_format, req.input_format);
  EXPECT_EQ(back.input_text, req.input_text);
}

TEST(Protocol, RejectsBadRequests) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1, 2]"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "frobnicate"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "submit", "id": "x"})"),
               ProtocolError);  // missing flow
  EXPECT_THROW(parse_request(R"({"type": "submit", "flow": "f"})"),
               ProtocolError);  // missing id
  EXPECT_THROW(
      parse_request(R"({"type": "submit", "id": "", "flow": "f"})"),
      ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "submit", "id": 7, "flow": "f"})"),
               ProtocolError);  // mistyped id
  EXPECT_THROW(
      parse_request(
          R"({"type": "submit", "id": "x", "flow": "f", "weight": 0})"),
      ProtocolError);
  EXPECT_THROW(
      parse_request(
          R"({"type": "submit", "id": "x", "flow": "f", "timeout_ms": -1})"),
      ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"type": "submit", "id": "x", "flow": "f",)"
                    R"( "input": {"format": "verilog", "text": "m"}})"),
      ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "cancel"})"), ProtocolError);
}

TEST(Protocol, IgnoresUnknownExtraFields) {
  const Request req = parse_request(
      R"({"type": "submit", "id": "j", "flow": "f", "future_field": [1]})");
  EXPECT_EQ(req.id, "j");
}

// --- server test harness ----------------------------------------------------

/// In-process client: collects response lines, parses them on demand.
class TestClient {
 public:
  explicit TestClient(JobServer& server) : server_(server) {
    id_ = server.attach([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    });
  }
  ~TestClient() { server_.detach(id_); }

  void send(const std::string& line) { server_.handle_line(id_, line); }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

  /// Blocks until a "done" (or job-scoped "error") line for \p job arrived;
  /// returns its status ("ok"/"error"/"cancelled"/"timeout") or "rejected".
  std::string wait_outcome(const std::string& job,
                           std::chrono::milliseconds timeout = 30s) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string& line : lines_) {
          const Json msg = Json::parse(line);
          const Json* type = msg.find("type");
          const Json* j = msg.find("job");
          if (j == nullptr || j->as_string() != job) continue;
          if (type->as_string() == "done")
            return msg.find("status")->as_string();
          if (type->as_string() == "error") return "rejected";
        }
      }
      if (std::chrono::steady_clock::now() > deadline) return "TIMEOUT";
      std::this_thread::sleep_for(1ms);
    }
  }

  /// Order in which jobs finished (their "done" lines).
  std::vector<std::string> done_order() const {
    std::vector<std::string> order;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const Json msg = Json::parse(line);
      if (const Json* t = msg.find("type"); t && t->as_string() == "done")
        order.push_back(msg.find("job")->as_string());
    }
    return order;
  }

  /// Streamed stage reports of \p job, parsed.
  std::vector<Json> stages_of(const std::string& job) const {
    std::vector<Json> stages;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      Json msg = Json::parse(line);
      const Json* t = msg.find("type");
      if (t && t->as_string() == "stage" &&
          msg.find("job")->as_string() == job) {
        stages.push_back(std::move(msg));
      }
    }
    return stages;
  }

 private:
  JobServer& server_;
  std::uint64_t id_ = 0;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string submit(const std::string& id, const std::string& flow,
                   std::int64_t timeout_ms = 0, double weight = 1.0) {
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = id;
  req.flow_spec = flow;
  req.timeout_ms = timeout_ms;
  req.weight = weight;
  return submit_line(req);
}

/// Latest emitted line whose "type" is \p type, parsed; null if none.
Json last_line_of_type(const std::vector<std::string>& lines,
                       const std::string& type) {
  Json found = Json::null();
  for (const std::string& line : lines) {
    Json msg = Json::parse(line);
    if (const Json* t = msg.find("type"); t && t->as_string() == type) {
      found = std::move(msg);
    }
  }
  return found;
}

/// Polls the "jobs" admin verb until \p id reports state "running"
/// (ASSERT-fails after 30s).  Used with a one-shot `flow.stage` delay to
/// pin a job observably in flight regardless of machine speed.
void wait_until_running(TestClient& client, const std::string& id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    client.send(jobs_request_line());
    const Json jobs = last_line_of_type(client.lines(), "jobs");
    if (jobs.is_object()) {
      for (const Json& row : jobs.find("jobs")->items()) {
        if (row.find("id")->as_string() == id &&
            row.find("state")->as_string() == "running") {
          return;
        }
      }
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << id << " never reached the running state";
    std::this_thread::sleep_for(1ms);
  }
}

// --- server: happy path -----------------------------------------------------

TEST(JobServer, StreamsStagesAndCompletes) {
  JobServer server(ServerOptions{.job_slots = 2});
  TestClient client(server);
  client.send(submit("j1", "gen:adder,bits=8; compress2rs; map_lut:k=4"));
  EXPECT_EQ(client.wait_outcome("j1"), "ok");

  const auto stages = client.stages_of("j1");
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].find("index")->as_int(), 0);
  const Json* rep = stages[0].find("stage");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->find("pass")->as_string(), "gen");
  EXPECT_TRUE(rep->find("ok")->as_bool());
  EXPECT_GT(rep->find("gates")->as_int(), 0);
  // The stage payload carries the obs delta (counters moved during gen).
  EXPECT_NE(rep->find("metrics"), nullptr);
  EXPECT_EQ(stages[2].find("stage")->find("pass")->as_string(), "map_lut");

  const ServerCounters c = server.counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(server.jobs_in_flight(), 0u);
}

TEST(JobServer, InlineInputNetworkFeedsSourcelessFlow) {
  // A 1-AND AIGER fed inline; the flow has no gen/read stage.
  const std::string aag = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = "inline";
  req.flow_spec = "strash; map_lut:k=4";
  req.input_format = "aiger";
  req.input_text = aag;

  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  client.send(submit_line(req));
  EXPECT_EQ(client.wait_outcome("inline"), "ok");
  const auto stages = client.stages_of("inline");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].find("stage")->find("gates")->as_int(), 1);
}

// --- server: error paths (the daemon must stay healthy through all) ---------

TEST(JobServer, SurvivesEveryClientError) {
  JobServer server(ServerOptions{.job_slots = 2});
  TestClient client(server);

  // 1. Malformed JSON -> job-less protocol error.
  client.send("this is not json");
  // 2. Unknown pass -> rejected at submit.
  client.send(submit("bad-pass", "definitely_not_a_pass"));
  // 3. Invalid param value -> rejected at submit.
  client.send(submit("bad-param", "gen:adder,bits=banana"));
  // 4. Unknown param key -> rejected at submit.
  client.send(submit("bad-key", "gen:adder,frobs=3"));
  // 5. Bad inline input -> rejected at submit.
  client.send(
      R"({"type": "submit", "id": "bad-input", "flow": "strash",)"
      R"( "input": {"format": "aiger", "text": "not an aiger file"}})");
  // 6. Mid-flow stage failure -> accepted, then done status "error".
  client.send(submit("bad-stage", "read_aiger:file=/nonexistent/x.aig"));
  // 7. Cancelling an unknown job -> error, no crash.
  client.send(cancel_line("never-existed"));

  EXPECT_EQ(client.wait_outcome("bad-pass"), "rejected");
  EXPECT_EQ(client.wait_outcome("bad-param"), "rejected");
  EXPECT_EQ(client.wait_outcome("bad-key"), "rejected");
  EXPECT_EQ(client.wait_outcome("bad-input"), "rejected");
  EXPECT_EQ(client.wait_outcome("bad-stage"), "error");

  // The failed stage still produced a well-formed streamed report.
  const auto stages = client.stages_of("bad-stage");
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_FALSE(stages[0].find("stage")->find("ok")->as_bool());

  // After all that, the server still runs jobs to completion.
  client.send(submit("healthy", "gen:adder,bits=8; compress2rs"));
  EXPECT_EQ(client.wait_outcome("healthy"), "ok");

  const ServerCounters c = server.counters();
  EXPECT_EQ(c.protocol_errors, 1u);
  EXPECT_EQ(c.rejected, 4u);
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.completed, 1u);  // only "healthy" finished ok
  EXPECT_EQ(server.jobs_in_flight(), 0u);
}

TEST(JobServer, RejectsDuplicateInFlightIds) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  client.send(submit("dup", "gen:multiplier,bits=32; compress2rs"));
  client.send(submit("dup", "gen:adder,bits=8"));  // still in flight
  EXPECT_EQ(client.wait_outcome("dup"), "rejected");  // the *second* answer
  // The first "dup" still completes fine.
  for (int i = 0; i < 30000; ++i) {
    if (server.jobs_in_flight() == 0) break;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(server.counters().completed, 1u);
}

// --- server: cancellation and timeouts --------------------------------------

TEST(JobServer, CancelsRunningJobAtStageBoundary) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  // A one-shot delay pins the job inside its first stage so the cancel
  // deterministically lands mid-flight (a fast machine can otherwise
  // finish the whole flow before the cancel is issued).
  fail::configure("flow.stage=delay,ms=300,count=1");
  client.send(
      submit("victim",
             "gen:multiplier,bits=32; compress2rs; compress2rs; compress2rs"));
  wait_until_running(client, "victim");
  const bool cancelled = server.cancel("victim");
  fail::disable();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(client.wait_outcome("victim"), "cancelled");

  // The synthetic final stage is streamed and marked failed.  (In the
  // microscopic window where the cancel lands while the job sits re-queued
  // between stages it is finalized without one; every streamed stage is
  // then a completed, ok one.)
  const auto stages = client.stages_of("victim");
  ASSERT_GE(stages.size(), 1u);
  const Json* last = stages.back().find("stage");
  if (!last->find("ok")->as_bool()) {
    EXPECT_EQ(last->find("note")->as_string(), "cancelled");
  }

  // Unaffected future work.
  client.send(submit("after", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("after"), "ok");
  EXPECT_EQ(server.counters().cancelled, 1u);
}

TEST(JobServer, CancelsQueuedJobImmediately) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  client.send(submit("hog", "gen:multiplier,bits=32; compress2rs"));
  client.send(submit("queued", "gen:adder,bits=8"));
  client.send(cancel_line("queued"));  // likely still behind the hog
  const std::string status = client.wait_outcome("queued");
  // Raced: either it was still queued (cancelled, zero stages) or it
  // slipped onto the runner first (ok).  Both leave the server coherent.
  EXPECT_TRUE(status == "cancelled" || status == "ok") << status;
  EXPECT_EQ(client.wait_outcome("hog"), "ok");
  EXPECT_EQ(server.jobs_in_flight(), 0u);
}

TEST(JobServer, EnforcesPerJobTimeout) {
  JobServer server(ServerOptions{.job_slots = 2});
  TestClient client(server);
  client.send(submit("slow", "gen:multiplier,bits=32; compress2rs; compress2rs",
                     /*timeout_ms=*/5));
  EXPECT_EQ(client.wait_outcome("slow"), "timeout");

  // Other jobs are untouched by a neighbour's deadline.
  client.send(submit("fine", "gen:adder,bits=8; compress2rs"));
  EXPECT_EQ(client.wait_outcome("fine"), "ok");
  EXPECT_EQ(server.counters().timed_out, 1u);
}

TEST(JobServer, ServerDefaultTimeoutApplies) {
  JobServer server(
      ServerOptions{.job_slots = 1, .default_timeout_ms = 5});
  TestClient client(server);
  // Two slow stages: the deadline has certainly passed by the boundary in
  // front of the second one (the token is only checked at boundaries).
  client.send(
      submit("slow", "gen:multiplier,bits=32; compress2rs; compress2rs"));
  EXPECT_EQ(client.wait_outcome("slow"), "timeout");
}

// --- server: fairness -------------------------------------------------------

TEST(JobServer, SmallJobsOvertakeAHeavyOne) {
  // One heavy optimization plus a burst of small maps, submitted *after*
  // the heavy job: with stage-granular fair scheduling every small job
  // must finish before the heavy one does.
  JobServer server(ServerOptions{.job_slots = 2});
  TestClient client(server);
  client.send(submit("heavy", "gen:multiplier,bits=64; compress2rs"));
  for (int i = 0; i < 4; ++i) {
    client.send(submit("small" + std::to_string(i),
                       "gen:adder,bits=8; map_lut:k=4"));
  }
  EXPECT_EQ(client.wait_outcome("heavy"), "ok");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client.wait_outcome("small" + std::to_string(i)), "ok");
  }
  const std::vector<std::string> order = client.done_order();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), "heavy")
      << "heavy job should finish last, got order: " << [&] {
           std::string s;
           for (const auto& o : order) s += o + " ";
           return s;
         }();
}

// --- server: drain ----------------------------------------------------------

TEST(JobServer, DrainFinishesAcceptedWorkAndRejectsNew) {
  JobServer server(ServerOptions{.job_slots = 2});
  TestClient client(server);
  client.send(submit("j1", "gen:multiplier,bits=32; compress2rs"));
  client.send(shutdown_line());
  client.send(submit("late", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("late"), "rejected");
  server.drain();
  EXPECT_EQ(client.wait_outcome("j1"), "ok");
  EXPECT_EQ(server.jobs_in_flight(), 0u);
  const ServerCounters c = server.counters();
  EXPECT_TRUE(c.draining);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.rejected, 1u);
}

// --- server: multi-tenant determinism ---------------------------------------

/// Two *different* rewrite-heavy flows (different bases, so different
/// thread_local NpnDatabase::shared entries) run many times concurrently
/// through the server; every run must be bit-identical to the serial
/// run_flow result.  This is the regression for interleaving jobs on
/// shared workers -- see NpnDatabase::shared's concurrency contract.
TEST(JobServer, ConcurrentMixedFlowsMatchSerialBitForBit) {
  const std::string dir = ::testing::TempDir();
  const std::string flow_a =
      "gen:adder,bits=16; rewrite:basis=aig; refactor:basis=aig; write_aiger:file=";
  const std::string flow_b =
      "gen:multiplier,bits=8; compress2rs:basis=xmg; write_aiger:file=";

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream text;
    text << in.rdbuf();
    std::remove(path.c_str());
    return text.str();
  };

  // Serial references, on this thread, through plain run_flow.
  {
    flow::FlowContext ctx;
    EXPECT_TRUE(flow::run_flow(flow_a + dir + "ref_a.aig", ctx).ok);
  }
  {
    flow::FlowContext ctx;
    EXPECT_TRUE(flow::run_flow(flow_b + dir + "ref_b.aig", ctx).ok);
  }
  const std::string ref_a = slurp(dir + "ref_a.aig");
  const std::string ref_b = slurp(dir + "ref_b.aig");
  ASSERT_FALSE(ref_a.empty());
  ASSERT_FALSE(ref_b.empty());

  // Concurrent mixed batch through the server (3 of each, interleaved).
  JobServer server(ServerOptions{.job_slots = 4});
  TestClient client(server);
  for (int i = 0; i < 3; ++i) {
    client.send(submit("a" + std::to_string(i),
                       flow_a + dir + "srv_a" + std::to_string(i) + ".aig"));
    client.send(submit("b" + std::to_string(i),
                       flow_b + dir + "srv_b" + std::to_string(i) + ".aig"));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.wait_outcome("a" + std::to_string(i)), "ok");
    EXPECT_EQ(client.wait_outcome("b" + std::to_string(i)), "ok");
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(slurp(dir + "srv_a" + std::to_string(i) + ".aig"), ref_a)
        << "job a" << i << " diverged from the serial run";
    EXPECT_EQ(slurp(dir + "srv_b" + std::to_string(i) + ".aig"), ref_b)
        << "job b" << i << " diverged from the serial run";
  }
}

// --- obs v2: per-job metric attribution --------------------------------------

/// Extracts the raw `"metrics": {...}` sub-document of a streamed stage
/// line, byte for byte.  Comparing serialized text (not parsed values) is
/// deliberate: the acceptance bar for domain attribution is *bit-equality*
/// of the per-stage deltas, so even an ordering or formatting wobble fails.
std::string metrics_blob(const std::string& line) {
  const std::size_t key = line.find("\"metrics\": {");
  if (key == std::string::npos) return {};
  const std::size_t open = line.find('{', key);
  int depth = 0;
  for (std::size_t i = open; i < line.size(); ++i) {
    if (line[i] == '{') ++depth;
    if (line[i] == '}' && --depth == 0) return line.substr(open, i - open + 1);
  }
  return {};
}

/// The metrics sub-documents of \p job's streamed stage lines, in stage
/// order.
std::vector<std::string> stage_metric_blobs(
    const std::vector<std::string>& lines, const std::string& job) {
  std::vector<std::string> blobs;
  for (const std::string& line : lines) {
    const Json msg = Json::parse(line);
    const Json* t = msg.find("type");
    const Json* j = msg.find("job");
    if (t != nullptr && t->as_string() == "stage" && j != nullptr &&
        j->as_string() == job) {
      blobs.push_back(metrics_blob(line));
    }
  }
  return blobs;
}

/// The obs v2 attribution contract (ISSUE acceptance): with per-job metric
/// domains, a job's per-stage counter deltas are *its own work only*, so
/// running N jobs concurrently must reproduce the serial deltas bit for
/// bit.  Before v2 the deltas read the process-global registry and
/// concurrent neighbors bled into each other's numbers.
TEST(JobServer, ConcurrentJobMetricsMatchSerialBitForBit) {
  const std::string flow_a =
      "gen:adder,bits=16; rewrite:basis=aig; refactor:basis=aig";
  const std::string flow_b = "gen:multiplier,bits=8; compress2rs";

  // Serial references: one job at a time on a single-slot server.
  std::vector<std::string> ref_a;
  std::vector<std::string> ref_b;
  {
    JobServer server(ServerOptions{.job_slots = 1});
    TestClient client(server);
    client.send(submit("ref-a", flow_a));
    ASSERT_EQ(client.wait_outcome("ref-a"), "ok");
    client.send(submit("ref-b", flow_b));
    ASSERT_EQ(client.wait_outcome("ref-b"), "ok");
    ref_a = stage_metric_blobs(client.lines(), "ref-a");
    ref_b = stage_metric_blobs(client.lines(), "ref-b");
  }
  ASSERT_EQ(ref_a.size(), 3u);
  ASSERT_EQ(ref_b.size(), 2u);
  for (const std::string& blob : ref_a) ASSERT_FALSE(blob.empty());
  for (const std::string& blob : ref_b) ASSERT_FALSE(blob.empty());

  // Interleaved batch: two of each flow, all four in flight at once.
  JobServer server(ServerOptions{.job_slots = 4});
  TestClient client(server);
  for (int i = 0; i < 2; ++i) {
    client.send(submit("a" + std::to_string(i), flow_a));
    client.send(submit("b" + std::to_string(i), flow_b));
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(client.wait_outcome("a" + std::to_string(i)), "ok");
    ASSERT_EQ(client.wait_outcome("b" + std::to_string(i)), "ok");
  }
  const std::vector<std::string> lines = client.lines();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(stage_metric_blobs(lines, "a" + std::to_string(i)), ref_a)
        << "job a" << i << "'s metric deltas diverged from the serial run";
    EXPECT_EQ(stage_metric_blobs(lines, "b" + std::to_string(i)), ref_b)
        << "job b" << i << "'s metric deltas diverged from the serial run";
  }
  // Every server stage declares the v2 semantics in-band.
  for (const std::string& line : lines) {
    const Json msg = Json::parse(line);
    if (const Json* t = msg.find("type"); t && t->as_string() == "stage") {
      EXPECT_NE(line.find("\"metrics_scope\": \"job\""), std::string::npos);
    }
  }
}

// --- obs v2: admin verbs ------------------------------------------------------

TEST(JobServer, AdminVerbsReportCountersHealthAndJobRows) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);

  // A queued job behind a running one so the "jobs" table shows both
  // scheduler states.  A one-shot delay on the first stage boundary keeps
  // "front" observably running -- with warm caches the whole flow can
  // otherwise finish between two polls.
  fail::configure("flow.stage=delay,ms=300,count=1");
  client.send(submit("front", "gen:multiplier,bits=64; compress2rs"));
  client.send(submit("back", "gen:adder,bits=8"));

  // Poll until the first job is dispatched (state "running").
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  Json jobs = Json::null();
  for (;;) {
    client.send(jobs_request_line());
    jobs = last_line_of_type(client.lines(), "jobs");
    ASSERT_TRUE(jobs.is_object());
    const Json* rows = jobs.find("jobs");
    ASSERT_NE(rows, nullptr);
    bool front_running = false;
    for (const Json& row : rows->items()) {
      if (row.find("id")->as_string() == "front" &&
          row.find("state")->as_string() == "running") {
        front_running = true;
      }
    }
    // Both rows must be visible: the submits are pipelined, so "back" can
    // lag "front"'s dispatch by a beat.
    if (front_running && rows->items().size() == 2) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      fail::disable();
      FAIL() << "job never reached the running state";
    }
    std::this_thread::sleep_for(1ms);
  }
  fail::disable();

  // Row shape: both jobs present with their scheduler state and the
  // attribution fields wired to the job's domain.
  const Json* rows = jobs.find("jobs");
  ASSERT_EQ(rows->items().size(), 2u);
  bool saw_back = false;
  for (const Json& row : rows->items()) {
    if (row.find("id")->as_string() != "back") continue;
    saw_back = true;
    EXPECT_EQ(row.find("state")->as_string(), "queued");
    EXPECT_EQ(row.find("stage")->as_int(), 0);
    EXPECT_EQ(row.find("stages")->as_int(), 1);
    EXPECT_EQ(row.find("pass")->as_string(), "gen");
    EXPECT_EQ(row.find("cpu_us")->as_int(), 0);  // never dispatched
    ASSERT_NE(row.find("queue_wait_seconds"), nullptr);
  }
  EXPECT_TRUE(saw_back);

  // "stats" embeds the obs registry exports verbatim plus the counters.
  client.send(stats_request_line());
  const Json stats = last_line_of_type(client.lines(), "stats");
  ASSERT_TRUE(stats.is_object());
  EXPECT_GE(stats.find("accepted")->as_int(), 2);
  EXPECT_GE(stats.find("uptime_seconds")->as_number(), 0.0);
  ASSERT_NE(stats.find("metrics"), nullptr);
  EXPECT_TRUE(stats.find("metrics")->is_object());
  ASSERT_NE(stats.find("ring"), nullptr);
  ASSERT_NE(stats.find("prometheus"), nullptr);
  EXPECT_TRUE(stats.find("prometheus")->is_string());

  // "health" answers with scheduler load and the telemetry-sampler state.
  client.send(health_request_line());
  const Json health = last_line_of_type(client.lines(), "health");
  ASSERT_TRUE(health.is_object());
  EXPECT_EQ(health.find("status")->as_string(), "ok");
  EXPECT_EQ(health.find("running")->as_int() + health.find("queued")->as_int(),
            2);
  ASSERT_NE(health.find("journal_bytes"), nullptr);
  ASSERT_NE(health.find("memory_bytes"), nullptr);
#ifndef MCS_OBS_DISABLE
  EXPECT_TRUE(health.find("telemetry")->as_bool());  // default options: on
#else
  EXPECT_FALSE(health.find("telemetry")->as_bool());  // sampler stubbed out
#endif

  client.send(cancel_line("front"));
  client.send(cancel_line("back"));
  server.drain();
}

TEST(JobServer, AdminVerbsAnswerDuringActiveDrain) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  client.send(submit("slow", "gen:multiplier,bits=64; compress2rs"));
  client.send(shutdown_line());

  // drain() blocks until "slow" finishes; observation must not.
  std::thread draining([&] { server.drain(); });
  client.send(health_request_line());
  client.send(stats_request_line());
  client.send(jobs_request_line());

  const Json health = last_line_of_type(client.lines(), "health");
  ASSERT_TRUE(health.is_object());
  EXPECT_EQ(health.find("status")->as_string(), "draining");
  const Json stats = last_line_of_type(client.lines(), "stats");
  ASSERT_TRUE(stats.is_object());
  EXPECT_GE(stats.find("accepted")->as_int(), 1);
  const Json jobs = last_line_of_type(client.lines(), "jobs");
  ASSERT_TRUE(jobs.is_object());

  draining.join();
  EXPECT_EQ(client.wait_outcome("slow"), "ok");
  EXPECT_EQ(server.jobs_in_flight(), 0u);
}

// --- journal ----------------------------------------------------------------

TEST(Journal, EntriesRoundTripThroughToLine) {
  JournalEntry accepted;
  accepted.kind = JournalEntry::Kind::kAccepted;
  accepted.job = "weird \"job\"\n";
  accepted.payload = submit("weird \"job\"\n", "gen:adder,bits=8");
  JournalEntry started;
  started.kind = JournalEntry::Kind::kStarted;
  started.job = "j";
  JournalEntry stage;
  stage.kind = JournalEntry::Kind::kStage;
  stage.job = "j";
  stage.index = 3;
  JournalEntry done;
  done.kind = JournalEntry::Kind::kDone;
  done.job = "j";
  done.status = "ok";
  done.payload = R"({"type": "done", "job": "j", "status": "ok"})";
  JournalEntry shutdown;
  shutdown.kind = JournalEntry::Kind::kShutdown;

  for (const JournalEntry& e :
       {accepted, started, stage, done, shutdown}) {
    const JournalEntry back = JournalEntry::parse(e.to_line());
    EXPECT_EQ(back.kind, e.kind);
    EXPECT_EQ(back.job, e.job);
    EXPECT_EQ(back.payload, e.payload);
    EXPECT_EQ(back.index, e.index);
    EXPECT_EQ(back.status, e.status);
  }
}

TEST(Journal, LoadToleratesATornTailLine) {
  const std::string path = ::testing::TempDir() + "mcs_journal_torn.ndjson";
  {
    Journal j;
    j.open(path);
    JournalEntry e;
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "j1";
    e.payload = submit("j1", "gen:adder,bits=8");
    j.append(e);
    e.job = "j2";
    e.payload = submit("j2", "gen:adder,bits=8");
    j.append(e);
  }
  {
    // Simulate a crash mid-append: a truncated, unterminated last line.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << R"({"e": "done", "job": "j1", "sta)";
  }
  std::size_t skipped = 0;
  const std::vector<JournalEntry> entries = Journal::load(path, &skipped);
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(skipped, 1u);  // the torn tail, counted but not fatal
  std::remove(path.c_str());
}

TEST(Journal, AnalyzeSeparatesPendingFromCompleted) {
  const std::string sub1 = submit("j1", "gen:adder,bits=8");
  const std::string sub2 = submit("j2", "gen:adder,bits=8");
  std::vector<JournalEntry> entries;
  JournalEntry e;
  e.kind = JournalEntry::Kind::kAccepted;
  e.job = "j1";
  e.payload = sub1;
  entries.push_back(e);
  e.job = "j2";
  e.payload = sub2;
  entries.push_back(e);
  e = {};
  e.kind = JournalEntry::Kind::kStarted;
  e.job = "j1";
  entries.push_back(e);
  e = {};
  e.kind = JournalEntry::Kind::kDone;
  e.job = "j1";
  e.status = "ok";
  e.payload = "done-line-j1";
  entries.push_back(e);

  Recovery rec = Journal::analyze(entries);
  EXPECT_FALSE(rec.clean_shutdown);  // no trailing shutdown entry
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].id, "j2");  // j1 finished; only j2 needs replay
  EXPECT_EQ(rec.pending[0].request, sub2);
  EXPECT_EQ(rec.pending[0].ckpt_index, -1);  // no checkpoint journaled
  ASSERT_EQ(rec.completed.size(), 1u);
  EXPECT_EQ(rec.completed[0].first, "j1");
  EXPECT_EQ(rec.completed[0].second, "done-line-j1");

  e = {};
  e.kind = JournalEntry::Kind::kShutdown;
  entries.push_back(e);
  rec = Journal::analyze(entries);
  EXPECT_TRUE(rec.clean_shutdown);

  // Id reuse across lives: the newest done line wins, deduplicated.
  e = {};
  e.kind = JournalEntry::Kind::kAccepted;
  e.job = "j1";
  e.payload = sub1;
  entries.push_back(e);
  e = {};
  e.kind = JournalEntry::Kind::kDone;
  e.job = "j1";
  e.status = "ok";
  e.payload = "done-line-j1-second-life";
  entries.push_back(e);
  rec = Journal::analyze(entries);
  ASSERT_EQ(rec.completed.size(), 1u);
  EXPECT_EQ(rec.completed[0].second, "done-line-j1-second-life");
}

TEST(Journal, CompactKeepsOnlyRetainedDoneEntries) {
  const std::string path = ::testing::TempDir() + "mcs_journal_compact.ndjson";
  {
    Journal j;
    j.open(path);
    JournalEntry e;
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "j1";
    e.payload = submit("j1", "gen:adder,bits=8");
    j.append(e);
    e.kind = JournalEntry::Kind::kDone;
    e.status = "ok";
    e.payload = "done-line-j1";
    j.append(e);
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "j2";
    e.payload = submit("j2", "gen:adder,bits=8");
    j.append(e);
  }
  const Recovery rec = Journal::analyze(Journal::load(path, nullptr));
  Journal::compact(path, rec);

  // The compacted journal replays to: nothing pending (pending jobs are
  // re-journaled by the server on re-submission), j1's done line kept.
  const Recovery after = Journal::analyze(Journal::load(path, nullptr));
  EXPECT_TRUE(after.pending.empty());
  ASSERT_EQ(after.completed.size(), 1u);
  EXPECT_EQ(after.completed[0].first, "j1");
  EXPECT_EQ(after.completed[0].second, "done-line-j1");
  std::remove(path.c_str());
}

// --- server: crash recovery -------------------------------------------------

TEST(JobServer, ReplaysUnfinishedJournalJobsAsRetried) {
  const std::string path = ::testing::TempDir() + "mcs_journal_replay.ndjson";
  std::remove(path.c_str());
  {
    // A journal left behind by a worker that died mid-job: the accept is
    // on the books, no done line, no shutdown marker.
    Journal j;
    j.open(path);
    JournalEntry e;
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "crashjob";
    e.payload = submit("crashjob", "gen:adder,bits=8; compress2rs");
    j.append(e);
  }

  JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
  EXPECT_EQ(server.counters().retried, 1u);

  // The replayed job runs unobserved (internal client 0) until its owner
  // re-binds by id; from then on its lines -- or its cached done line,
  // if it already finished -- reach this client.
  TestClient client(server);
  client.send(attach_line("crashjob"));
  EXPECT_EQ(client.wait_outcome("crashjob"), "ok");

  bool saw_done = false;
  for (const std::string& line : client.lines()) {
    const Json msg = Json::parse(line);
    const Json* t = msg.find("type");
    if (t == nullptr || t->as_string() != "done") continue;
    saw_done = true;
    const Json* retried = msg.find("retried");
    ASSERT_NE(retried, nullptr) << line;
    EXPECT_TRUE(retried->as_bool());
  }
  EXPECT_TRUE(saw_done);

  // Attaching to a job the journal never heard of is an error, not a hang.
  client.send(attach_line("never-existed"));
  EXPECT_EQ(client.wait_outcome("never-existed"), "rejected");
  std::remove(path.c_str());
}

TEST(JobServer, CleanShutdownReplaysNothingAndAnswersAttachFromCache) {
  const std::string path = ::testing::TempDir() + "mcs_journal_clean.ndjson";
  std::remove(path.c_str());
  {
    JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
    TestClient client(server);
    client.send(submit("j1", "gen:adder,bits=8"));
    EXPECT_EQ(client.wait_outcome("j1"), "ok");
  }  // destructor journals the shutdown marker

  JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
  EXPECT_EQ(server.counters().retried, 0u);
  EXPECT_EQ(server.jobs_in_flight(), 0u);

  // The retained done line still answers a late re-attach.
  TestClient client(server);
  client.send(attach_line("j1"));
  EXPECT_EQ(client.wait_outcome("j1"), "ok");
  std::remove(path.c_str());
}

// --- server: stage-level resume (mcs::ckpt) ---------------------------------

TEST(Journal, StageCkptEntriesRoundTripAndDriveTheResumeIndex) {
  JournalEntry e;
  e.kind = JournalEntry::Kind::kStageCkpt;
  e.job = "j1";
  e.index = 3;
  const JournalEntry back = JournalEntry::parse(e.to_line());
  EXPECT_EQ(back.kind, JournalEntry::Kind::kStageCkpt);
  EXPECT_EQ(back.job, "j1");
  EXPECT_EQ(back.index, 3u);

  std::vector<JournalEntry> entries;
  JournalEntry a;
  a.kind = JournalEntry::Kind::kAccepted;
  a.job = "j1";
  a.payload = submit("j1", "gen:adder,bits=8; compress2rs; rewrite");
  entries.push_back(a);
  Recovery rec = Journal::analyze(entries);
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].ckpt_index, -1);  // no checkpoint yet

  e.index = 0;
  entries.push_back(e);
  e.index = 2;
  entries.push_back(e);
  rec = Journal::analyze(entries);
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].ckpt_index, 2);  // the latest checkpoint wins

  // A checkpoint entry without its accepted entry (compaction artifact /
  // torn journal) must not fabricate a pending job.
  rec = Journal::analyze({e});
  EXPECT_TRUE(rec.pending.empty());

  JournalEntry d;
  d.kind = JournalEntry::Kind::kDone;
  d.job = "j1";
  d.status = "ok";
  d.payload = "done-line";
  entries.push_back(d);
  rec = Journal::analyze(entries);
  EXPECT_TRUE(rec.pending.empty());
}

TEST(JobServer, ResumesReplayedJobFromItsStageCheckpoint) {
  const std::string path = ::testing::TempDir() + "mcs_journal_resume.ndjson";
  const std::string ckpt_dir = path + ".ckpt";
  std::remove(path.c_str());

  // Fabricate the on-disk state of a worker killed right after stage 0 of
  // a three-stage flow: the journal pairs the accepted entry with a
  // "stage_ckpt", and the checkpoint directory holds the stage-0 snapshot
  // (exactly what write_stage_checkpoint leaves behind).
  flow::FlowContext ctx;
  flow::run_flow("gen:adder,bits=8", ctx);
  ::mkdir(ckpt_dir.c_str(), 0755);
  ckpt::write_snapshot_file(ctx.net, ckpt_dir + "/resumejob.s0.snap");
  {
    Journal j;
    j.open(path);
    JournalEntry e;
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "resumejob";
    e.payload = submit("resumejob", "gen:adder,bits=8; compress2rs; rewrite");
    j.append(e);
    e = {};
    e.kind = JournalEntry::Kind::kStarted;
    e.job = "resumejob";
    j.append(e);
    e.kind = JournalEntry::Kind::kStage;
    e.index = 0;
    j.append(e);
    e.kind = JournalEntry::Kind::kStageCkpt;
    j.append(e);
  }

  JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
  EXPECT_EQ(server.counters().retried, 1u);
  EXPECT_EQ(server.counters().resumed, 1u);

  TestClient client(server);
  client.send(attach_line("resumejob"));
  EXPECT_EQ(client.wait_outcome("resumejob"), "ok");

  // The done line says where execution actually restarted.
  bool saw_done = false;
  for (const std::string& line : client.lines()) {
    const Json msg = Json::parse(line);
    const Json* t = msg.find("type");
    if (t == nullptr || t->as_string() != "done") continue;
    saw_done = true;
    const Json* retried = msg.find("retried");
    ASSERT_NE(retried, nullptr) << line;
    EXPECT_TRUE(retried->as_bool());
    const Json* resumed = msg.find("resumed_stage");
    ASSERT_NE(resumed, nullptr) << line;
    EXPECT_EQ(resumed->as_int(), 1);  // stage 0 was checkpointed, skip it
  }
  EXPECT_TRUE(saw_done);

  std::remove(path.c_str());
  std::remove((ckpt_dir + "/resumejob.s0.snap").c_str());
  ::rmdir(ckpt_dir.c_str());
}

TEST(JobServer, CorruptCheckpointDegradesToReplayFromScratch) {
  const std::string path = ::testing::TempDir() + "mcs_journal_badck.ndjson";
  const std::string ckpt_dir = path + ".ckpt";
  std::remove(path.c_str());
  ::mkdir(ckpt_dir.c_str(), 0755);
  {
    std::ofstream snap(ckpt_dir + "/badck.s0.snap", std::ios::binary);
    snap << "MCSS garbage, not a snapshot";
  }
  {
    Journal j;
    j.open(path);
    JournalEntry e;
    e.kind = JournalEntry::Kind::kAccepted;
    e.job = "badck";
    e.payload = submit("badck", "gen:adder,bits=8; compress2rs");
    j.append(e);
    e = {};
    e.kind = JournalEntry::Kind::kStageCkpt;
    e.job = "badck";
    e.index = 0;
    j.append(e);
  }

  // The unusable checkpoint must cost nothing but the shortcut: the job
  // replays from stage 0 and still completes.
  JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
  EXPECT_EQ(server.counters().retried, 1u);
  EXPECT_EQ(server.counters().resumed, 0u);
  TestClient client(server);
  client.send(attach_line("badck"));
  EXPECT_EQ(client.wait_outcome("badck"), "ok");

  std::remove(path.c_str());
  std::remove((ckpt_dir + "/badck.s0.snap").c_str());
  ::rmdir(ckpt_dir.c_str());
}

TEST(JobServer, AutoCompactsTheJournalPastMaxBytes) {
  const std::string path =
      ::testing::TempDir() + "mcs_journal_autocompact.ndjson";
  const std::string ckpt_dir = path + ".ckpt";
  std::remove(path.c_str());
#ifndef MCS_OBS_DISABLE
  const std::uint64_t compactions_before =
      obs::counter("ckpt.journal_compactions").value();
#endif
  {
    // 256 bytes: every post-stage watermark check is over budget, so the
    // journal is rewritten down to live state continuously.
    JobServer server(ServerOptions{.job_slots = 1,
                                   .journal_path = path,
                                   .journal_max_bytes = 256});
    TestClient client(server);
    client.send(submit("c1", "gen:adder,bits=8; compress2rs"));
    EXPECT_EQ(client.wait_outcome("c1"), "ok");
    client.send(submit("c2", "gen:adder,bits=8; compress2rs"));
    EXPECT_EQ(client.wait_outcome("c2"), "ok");
  }  // drains, journals the shutdown marker
#ifndef MCS_OBS_DISABLE
  EXPECT_GT(obs::counter("ckpt.journal_compactions").value(),
            compactions_before);
#endif

  // The compacted journal holds only the live state: the done cache and
  // the shutdown marker -- no per-stage progress history.
  std::size_t skipped = 0;
  const auto entries = Journal::load(path, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_LE(entries.size(), 5u);
  for (const JournalEntry& e : entries) {
    EXPECT_NE(e.kind, JournalEntry::Kind::kStage);
    EXPECT_NE(e.kind, JournalEntry::Kind::kStageCkpt);
  }

  // ...and it still replays correctly: clean shutdown, attach from cache.
  JobServer server(ServerOptions{.job_slots = 1, .journal_path = path});
  EXPECT_EQ(server.counters().retried, 0u);
  TestClient client(server);
  client.send(attach_line("c2"));
  EXPECT_EQ(client.wait_outcome("c2"), "ok");

  std::remove(path.c_str());
  ::rmdir(ckpt_dir.c_str());
}

TEST(JobServer, DoneCacheBoundIsConfigurable) {
  JobServer server(ServerOptions{.job_slots = 1, .done_cache = 1});
  TestClient client(server);
  client.send(submit("d1", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("d1"), "ok");
  client.send(submit("d2", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("d2"), "ok");

  // Only the newest done line is retained for late attaches.
  TestClient late(server);
  late.send(attach_line("d2"));
  EXPECT_EQ(late.wait_outcome("d2"), "ok");
  late.send(attach_line("d1"));
  EXPECT_EQ(late.wait_outcome("d1"), "rejected");
}

// --- server: degradation guards ---------------------------------------------

TEST(JobServer, RejectsOversizeInlineInput) {
  JobServer server(
      ServerOptions{.job_slots = 1, .max_input_bytes = 16});
  TestClient client(server);
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = "big";
  req.flow_spec = "strash";
  req.input_format = "aiger";
  req.input_text = std::string(64, 'x');  // rejected before parsing
  client.send(submit_line(req));
  EXPECT_EQ(client.wait_outcome("big"), "rejected");
  EXPECT_EQ(server.counters().rejected, 1u);

  // Under the limit still works.
  client.send(submit("small", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("small"), "ok");
}

TEST(JobServer, EnforcesPerClientJobQuota) {
  JobServer server(
      ServerOptions{.job_slots = 1, .max_jobs_per_client = 1});
  TestClient client(server);
  client.send(submit("hog", "gen:multiplier,bits=32; compress2rs"));
  client.send(submit("over", "gen:adder,bits=8"));  // hog still in flight
  EXPECT_EQ(client.wait_outcome("over"), "rejected");
  EXPECT_EQ(client.wait_outcome("hog"), "ok");

  // The quota frees with the job.
  client.send(submit("after", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("after"), "ok");
}

#ifndef MCS_OBS_DISABLE
TEST(JobServer, ShedsLoadPastTheMemoryHighWater) {
  // The guard reads the obs high-water gauges; crank one past the limit.
  // High-water marks only rise, so this test pins it back down afterwards
  // via set_max being a no-op -- use a dedicated large value and accept
  // that later tests see it too (the guard is off for them: default 0).
  obs::gauge("strash.bytes_max").set_max(std::int64_t{2} << 20);
  JobServer server(
      ServerOptions{.job_slots = 1, .max_memory_mb = 1});
  TestClient client(server);
  client.send(submit("shed", "gen:adder,bits=8"));
  EXPECT_EQ(client.wait_outcome("shed"), "rejected");
  EXPECT_EQ(server.counters().rejected, 1u);
}
#endif

// --- server: inline result artifacts ----------------------------------------

TEST(JobServer, EmitAigerInlinesTheResultNetlist) {
  JobServer server(ServerOptions{.job_slots = 1});
  TestClient client(server);
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = "art";
  req.flow_spec = "gen:adder,bits=8; compress2rs";
  req.emit = "aiger";
  client.send(submit_line(req));
  EXPECT_EQ(client.wait_outcome("art"), "ok");

  const Json* artifact = nullptr;
  Json done = Json::null();
  for (const std::string& line : client.lines()) {
    Json msg = Json::parse(line);
    const Json* t = msg.find("type");
    if (t && t->as_string() == "done") {
      done = std::move(msg);
      artifact = done.find("artifact");
    }
  }
  ASSERT_NE(artifact, nullptr) << "done line carries no artifact";
  EXPECT_EQ(artifact->find("format")->as_string(), "aiger");

  // The inline text is a complete, loadable ASCII AIGER of the result.
  // (Gate counts need not match the "gates" field: a non-AIG working
  // network is expanded to AND gates for the AIGER serialization.)
  std::istringstream is(artifact->find("text")->as_string());
  const Network net = read_aiger(is);
  EXPECT_GT(net.num_gates(), 0u);
  EXPECT_GE(static_cast<std::int64_t>(net.num_gates()),
            done.find("gates")->as_int());
}

}  // namespace
}  // namespace mcs::server
