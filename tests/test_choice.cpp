/// Tests for the MCH operator (Algorithms 1-2) and the DCH baseline:
/// functional correctness of every choice class, acyclicity of the
/// augmented dependency graph, path classification, and heterogeneity of
/// the candidates.

#include <gtest/gtest.h>

#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

/// Checks every choice class of \p net by random simulation + SAT.
void expect_choices_valid(const Network& net) {
  RandomSimulation sim(net, 8, 0x1234);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!net.has_choice(n)) continue;
    for (NodeId m = net.node(n).next_choice; m != kNullNode;
         m = net.node(m).next_choice) {
      const bool phase = net.node(m).choice_phase;
      ASSERT_TRUE(sim.values_equal(Signal(n, false), Signal(m, phase)))
          << "class of node " << n << " member " << m;
      ASSERT_EQ(check_signals_equivalent(net, Signal(n, false),
                                         Signal(m, phase)),
                CecResult::kEquivalent);
    }
  }
}

/// The augmented dependency order must exist and respect both edge kinds.
void expect_choice_order_valid(const Network& net) {
  const auto order = choice_topo_order(net);
  std::vector<int> pos(net.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = (int)i;
  for (const NodeId n : order) {
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      ASSERT_LT(pos[nd.fanin[i].node()], pos[n]);
    }
    if (net.is_repr(n)) {
      for (NodeId m = nd.next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        ASSERT_GE(pos[m], 0);
        ASSERT_LT(pos[m], pos[n]) << "member must precede representative";
      }
    }
  }
}

TEST(CollectCritical, MarksLongestPaths) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal g1 = net.create_and(a, b);   // level 1
  const Signal g2 = net.create_and(g1, c);  // level 2
  const Signal g3 = net.create_and(g2, a);  // level 3 -- critical path
  const Signal h = net.create_and(b, c);    // level 1, off-path
  net.create_po(g3);
  net.create_po(h);
  const auto critical = collect_critical_nodes(net, 0.9);
  EXPECT_TRUE(critical[g3.node()]);
  EXPECT_TRUE(critical[g2.node()]);
  EXPECT_TRUE(critical[g1.node()]);
  EXPECT_FALSE(critical[h.node()]);
  // Lowering the ratio below h's relative depth makes h critical too.
  const auto all = collect_critical_nodes(net, 0.2);
  EXPECT_TRUE(all[h.node()]);
}

class MchOnRandomNetworks
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MchOnRandomNetworks, ChoicesAreValidAndOrderable) {
  const auto [seed, basis_id] = GetParam();
  const GateBasis bases[] = {GateBasis::aig(), GateBasis::xag(),
                             GateBasis::mig(), GateBasis::xmg()};
  const auto input = testing::random_network(
      {.num_pis = 6,
       .num_gates = 60,
       .num_pos = 4,
       .basis = GateBasis::aig(),
       .seed = static_cast<std::uint64_t>(seed)});

  MchParams params;
  params.candidate_basis = bases[basis_id];
  params.verify_candidates = true;
  MchStats stats;
  const Network mch = build_mch(input, params, &stats);

  // Interface preserved, function preserved.
  ASSERT_EQ(mch.num_pis(), input.num_pis());
  ASSERT_EQ(mch.num_pos(), input.num_pos());
  EXPECT_EQ(check_equivalence(input, mch), CecResult::kEquivalent);

  // A meaningful number of choices is expected on random logic.
  EXPECT_GT(stats.num_choices_added, 0u);
  EXPECT_EQ(stats.num_choices_added, mch.num_choices());

  expect_choices_valid(mch);
  expect_choice_order_valid(mch);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBases, MchOnRandomNetworks,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(Mch, CandidatesAreHeterogeneous) {
  // An AIG input with XMG candidates must contain MAJ/XOR choice nodes.
  const auto input = testing::random_network({.num_pis = 6,
                                              .num_gates = 80,
                                              .num_pos = 4,
                                              .basis = GateBasis::aig(),
                                              .seed = 5});
  ASSERT_TRUE(input.is_aig());
  MchParams params;
  params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(input, params);
  const auto stats = network_stats(mch);
  EXPECT_GT(stats.num_xor2 + stats.num_xor3 + stats.num_maj3, 0u)
      << "XMG candidates should introduce non-AND structure";
}

TEST(Mch, RespectsPerNodeCap) {
  const auto input = testing::random_network({.num_gates = 60, .seed = 11});
  MchParams params;
  params.max_choices_per_node = 2;
  const Network mch = build_mch(input, params);
  for (NodeId n = 0; n < mch.size(); ++n) {
    if (!mch.has_choice(n)) continue;
    int k = 0;
    for (NodeId m = mch.node(n).next_choice; m != kNullNode;
         m = mch.node(m).next_choice) {
      ++k;
    }
    EXPECT_LE(k, 2);
  }
}

TEST(Mch, RatioControlsCriticalCoverage) {
  const auto input = testing::random_network(
      {.num_pis = 8, .num_gates = 120, .num_pos = 6, .seed = 13});
  const Network flat = cleanup(input);
  const auto strict = collect_critical_nodes(flat, 1.0);
  const auto loose = collect_critical_nodes(flat, 0.3);
  const auto count = [](const std::vector<bool>& v) {
    return std::count(v.begin(), v.end(), true);
  };
  EXPECT_LE(count(strict), count(loose));
  EXPECT_GT(count(strict), 0);
}

TEST(Dch, MergesSnapshotsIntoValidChoices) {
  // Snapshot 0: original; snapshot 1: structurally different equivalent.
  Network n1, n2;
  {
    const auto a = n1.create_pi(), b = n1.create_pi(), c = n1.create_pi();
    n1.create_po(n1.create_and(n1.create_and(a, b), c));
    n1.create_po(n1.create_xor(n1.create_and(a, b), c));
  }
  {
    const auto a = n2.create_pi(), b = n2.create_pi(), c = n2.create_pi();
    n2.create_po(n2.create_and(a, n2.create_and(b, c)));
    // XOR via its AND expansion: (ab)^c.
    const auto ab = n2.create_and(a, b);
    n2.create_po(n2.create_or(n2.create_and(ab, !c),
                              n2.create_and(!ab, c)));
  }
  DchStats stats;
  const Network dch = build_dch({n1, n2}, {}, &stats);
  EXPECT_EQ(check_equivalence(n1, dch), CecResult::kEquivalent);
  EXPECT_GT(stats.num_proven, 0u);
  EXPECT_GT(dch.num_choices(), 0u);
  expect_choices_valid(dch);
  expect_choice_order_valid(dch);
}

TEST(Dch, RandomNetworkWithRestructuredSnapshot) {
  const auto base = testing::random_network({.num_pis = 6,
                                             .num_gates = 50,
                                             .num_pos = 4,
                                             .basis = GateBasis::xmg(),
                                             .seed = 17});
  // A second snapshot: the AND-expanded version (different structure).
  const Network expanded = expand_to_aig(base);
  ASSERT_EQ(check_equivalence(base, expanded), CecResult::kEquivalent);

  DchStats stats;
  const Network dch = build_dch({base, expanded}, {}, &stats);
  EXPECT_EQ(check_equivalence(base, dch), CecResult::kEquivalent);
  expect_choices_valid(dch);
  expect_choice_order_valid(dch);
}

TEST(Convert, BasisRoundTripsPreserveFunction) {
  const auto net = testing::random_network({.num_pis = 6,
                                            .num_gates = 60,
                                            .num_pos = 4,
                                            .basis = GateBasis::xmg(),
                                            .seed = 23});
  for (const GateBasis basis : {GateBasis::aig(), GateBasis::xag(),
                                GateBasis::mig(), GateBasis::xmg()}) {
    const Network conv = convert_basis(net, basis);
    EXPECT_EQ(check_equivalence(net, conv), CecResult::kEquivalent)
        << basis.name();
    const auto stats = network_stats(conv);
    if (!basis.use_xor) {
      EXPECT_EQ(stats.num_xor2 + stats.num_xor3, 0u);
    }
    if (!basis.use_maj) {
      EXPECT_EQ(stats.num_maj3, 0u);
    }
  }
}

TEST(Convert, DetectXorsFindsThePattern) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  // XOR(a, b) as OR(AND(a,!b), AND(!a,b)) in pure AIG form.
  const Signal x = net.create_or(net.create_and(a, !b),
                                 net.create_and(!a, b));
  net.create_po(x);
  ASSERT_TRUE(net.is_aig());
  const Network xag = detect_xors(net);
  EXPECT_EQ(check_equivalence(net, xag), CecResult::kEquivalent);
  EXPECT_EQ(network_stats(xag).num_xor2, 1u);
  EXPECT_EQ(xag.num_gates(), 1u);
}

TEST(Convert, DetectXorsOnAdderLikeLogic) {
  // Chain of XORs expanded to AIG, then recovered.
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(net.create_pi());
  Signal acc = pis[0];
  for (int i = 1; i < 5; ++i) {
    acc = net.create_or(net.create_and(acc, !pis[i]),
                        net.create_and(!acc, pis[i]));
  }
  net.create_po(acc);
  const Network xag = detect_xors(net);
  EXPECT_EQ(check_equivalence(net, xag), CecResult::kEquivalent);
  EXPECT_EQ(network_stats(xag).num_xor2, 4u);
}

}  // namespace
}  // namespace mcs
