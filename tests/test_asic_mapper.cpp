/// Tests for the technology library (mini-ASAP7, genlib parsing, NPN match
/// index) and the phase-aware ASIC mapper.

#include <gtest/gtest.h>

#include "mcs/choice/mch.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

const TechLibrary& lib() {
  static const TechLibrary l = TechLibrary::asap7_mini();
  return l;
}

void expect_netlist_equivalent(const Network& net, const CellNetlist& m) {
  ASSERT_EQ(m.num_pis, static_cast<int>(net.num_pis()));
  ASSERT_EQ(m.po_refs.size(), net.num_pos());
  RandomSimulation sim(net, 8, 0x7777);
  for (int w = 0; w < 8; ++w) {
    std::vector<std::uint64_t> pi_vals;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi_vals.push_back(sim.node_values(net.pi_at(i))[w]);
    }
    const auto pos = m.simulate(pi_vals);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal s = net.po_at(i);
      const std::uint64_t expected =
          sim.node_values(s.node())[w] ^ (s.complemented() ? ~0ull : 0ull);
      ASSERT_EQ(pos[i], expected) << "PO " << i << " word " << w;
    }
  }
}

TEST(TechLibrary, Asap7MiniIsWellFormed) {
  const auto& l = lib();
  EXPECT_GE(l.cells().size(), 25u);
  EXPECT_GE(l.inverter(), 0);
  EXPECT_GE(l.buffer(), 0);
  for (const Cell& c : l.cells()) {
    EXPECT_GT(c.area, 0.0) << c.name;
    EXPECT_GT(c.max_pin_delay(), 0.0) << c.name;
    EXPECT_EQ(static_cast<int>(c.pin_delays.size()), c.num_pins) << c.name;
  }
}

TEST(TechLibrary, MatchIndexFindsAndClass) {
  const auto& l = lib();
  const Tt6 f = tt6_var(0) & tt6_var(1);
  const auto canon = npn_canonicalize_exact(f, 2);
  const auto* matches = l.matches(canon.canon, 2);
  ASSERT_NE(matches, nullptr);
  // AND2, NAND2, NOR2, OR2 are all NPN-equivalent to AND2.
  EXPECT_GE(matches->size(), 4u);
}

TEST(TechLibrary, MatchIndexFindsMajAndXorClasses) {
  const auto& l = lib();
  const Tt6 a = tt6_var(0), b = tt6_var(1), c = tt6_var(2);
  const auto maj = npn_canonicalize_exact((a & b) | (a & c) | (b & c), 3);
  ASSERT_NE(l.matches(maj.canon, 3), nullptr);
  const auto x3 = npn_canonicalize_exact(a ^ b ^ c, 3);
  ASSERT_NE(l.matches(x3.canon, 3), nullptr);
  const auto x2 = npn_canonicalize_exact(a ^ b, 2);
  ASSERT_NE(l.matches(x2.canon, 2), nullptr);
}

TEST(TechLibrary, BasicVariantDropsMajXor3) {
  const TechLibrary basic = TechLibrary::asap7_mini_basic();
  EXPECT_LT(basic.cells().size(), lib().cells().size());
  EXPECT_GE(basic.inverter(), 0);
  const Tt6 a = tt6_var(0), b = tt6_var(1), c = tt6_var(2);
  const auto maj = npn_canonicalize_exact((a & b) | (a & c) | (b & c), 3);
  EXPECT_EQ(basic.matches(maj.canon, 3), nullptr);
  const auto x2 = npn_canonicalize_exact(a ^ b, 2);
  EXPECT_NE(basic.matches(x2.canon, 2), nullptr) << "XOR2 cells remain";
}

TEST(AsicMapper, BasicLibraryMapsXagNetworks) {
  const TechLibrary basic = TechLibrary::asap7_mini_basic();
  const auto net = testing::random_network(
      {.num_pis = 7, .num_gates = 90, .num_pos = 4,
       .basis = GateBasis::xag(), .seed = 99});
  const auto m = asic_map(net, basic);
  expect_netlist_equivalent(net, m);
}

TEST(TechLibrary, GenlibRoundTrip) {
  const std::string text = R"(
# a tiny genlib
GATE inv1 1.0 O=!a;
  PIN * INV 1 999 0.9 0.0 0.9 0.0
GATE nand2 2.0 O=!(a*b);
  PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE aoi21 3.0 O=!(a*b+c);
  PIN a INV 1 999 1.2 0.0 1.1 0.0
  PIN b INV 1 999 1.2 0.0 1.2 0.0
  PIN c INV 1 999 0.8 0.0 0.9 0.0
GATE xor2 4.0 O=a*!b+!a*b;
  PIN * UNKNOWN 1 999 2.0 0.0 2.0 0.0
GATE zero 0.0 O=CONST0;
)";
  const TechLibrary l = TechLibrary::parse_genlib(text);
  ASSERT_EQ(l.cells().size(), 4u) << "constant cells are skipped";
  EXPECT_GE(l.inverter(), 0);
  EXPECT_EQ(l.cell(l.inverter()).name, "inv1");

  const Cell* aoi = nullptr;
  for (const auto& c : l.cells()) {
    if (c.name == "aoi21") aoi = &c;
  }
  ASSERT_NE(aoi, nullptr);
  EXPECT_EQ(aoi->num_pins, 3);
  EXPECT_TRUE(tt6_equal(aoi->function,
                        ~((tt6_var(0) & tt6_var(1)) | tt6_var(2)), 3));
  EXPECT_DOUBLE_EQ(aoi->pin_delays[2], 0.9);

  const Cell* x = nullptr;
  for (const auto& c : l.cells()) {
    if (c.name == "xor2") x = &c;
  }
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(tt6_equal(x->function, tt6_var(0) ^ tt6_var(1), 2));
}

TEST(AsicMapper, SingleAndGate) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.create_po(net.create_and(a, b));
  AsicMapStats stats;
  const auto m = asic_map(net, lib(), {}, &stats);
  EXPECT_GE(stats.num_instances, 1u);
  expect_netlist_equivalent(net, m);
}

TEST(AsicMapper, ComplementedPoUsesInverterOrNegativeCell) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.create_po(!net.create_and(a, b));  // NAND: one cell, no inverter
  const auto m = asic_map(net, lib());
  EXPECT_EQ(m.size(), 1u) << "phase-aware matching should pick NAND2";
  expect_netlist_equivalent(net, m);
}

TEST(AsicMapper, ConstantAndPassThroughPos) {
  Network net;
  const Signal a = net.create_pi();
  net.create_po(net.constant(false));
  net.create_po(net.constant(true));
  net.create_po(a);
  net.create_po(!a);
  const auto m = asic_map(net, lib());
  expect_netlist_equivalent(net, m);
}

class AsicMapperOnRandomNets
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AsicMapperOnRandomNets, MappingIsFunctionallyCorrect) {
  const auto [seed, objective] = GetParam();
  const auto net = testing::random_network(
      {.num_pis = 8,
       .num_gates = 120,
       .num_pos = 6,
       .basis = GateBasis::xmg(),
       .seed = static_cast<std::uint64_t>(seed)});
  AsicMapParams params;
  params.objective = objective == 0 ? AsicMapParams::Objective::kDelay
                                    : AsicMapParams::Objective::kArea;
  params.use_choices = false;
  AsicMapStats stats;
  const auto m = asic_map(net, lib(), params, &stats);
  EXPECT_GT(stats.area, 0.0);
  EXPECT_GT(stats.delay, 0.0);
  expect_netlist_equivalent(net, m);
}

TEST_P(AsicMapperOnRandomNets, MappingWithChoicesIsFunctionallyCorrect) {
  const auto [seed, objective] = GetParam();
  const auto input = testing::random_network(
      {.num_pis = 7,
       .num_gates = 90,
       .num_pos = 5,
       .basis = GateBasis::aig(),
       .seed = static_cast<std::uint64_t>(seed + 7)});
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(input, mch_params);
  ASSERT_GT(mch.num_choices(), 0u);

  AsicMapParams params;
  params.objective = objective == 0 ? AsicMapParams::Objective::kDelay
                                    : AsicMapParams::Objective::kArea;
  const auto m = asic_map(mch, lib(), params);
  expect_netlist_equivalent(input, m);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndObjectives, AsicMapperOnRandomNets,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1)));

TEST(AsicMapper, DelayObjectiveIsFasterOrEqual) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 250, .num_pos = 4, .seed = 77});
  AsicMapParams d;
  d.objective = AsicMapParams::Objective::kDelay;
  d.use_choices = false;
  AsicMapParams a;
  a.objective = AsicMapParams::Objective::kArea;
  a.use_choices = false;
  const auto md = asic_map(net, lib(), d);
  const auto ma = asic_map(net, lib(), a);
  EXPECT_LE(md.delay, ma.delay + 1e-6);
  EXPECT_LE(ma.area, md.area + 1e-6);
}

TEST(AsicMapper, XorRichLogicBenefitsFromXagChoices) {
  // Parity ladder in pure AIG form; XMG/XAG candidates let the mapper use
  // the XOR2/XOR3 cells directly.
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 12; ++i) pis.push_back(net.create_pi());
  Signal acc = pis[0];
  for (std::size_t i = 1; i < pis.size(); ++i) {
    const Signal x = pis[i];
    acc = net.create_or(net.create_and(acc, !x), net.create_and(!acc, x));
  }
  net.create_po(acc);
  ASSERT_TRUE(net.is_aig());

  AsicMapParams params;
  params.objective = AsicMapParams::Objective::kArea;
  const auto baseline = asic_map(cleanup(net), lib(), params);

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.0;
  const Network mch = build_mch(net, mch_params);
  const auto improved = asic_map(mch, lib(), params);

  // The NPN matcher already recovers XOR cells from 4-cuts of the AIG, so
  // the baseline is strong here; choices must never make it worse.
  EXPECT_LE(improved.area, baseline.area + 1e-6);
  expect_netlist_equivalent(net, improved);
}

TEST(AsicMapper, MffcChoicesRecoverSharingBeyondCutReach) {
  // PO2 computes (abcd | abce | abcf) as three independent product terms:
  // the common abc factor spans 6 leaves, invisible to any 4-cut.  The
  // MFFC-based area candidates of MCH refactor it to abc & (d|e|f).
  // PO1 is a deeper chain that absorbs the critical paths, keeping PO2's
  // cone in the area-oriented class.
  Network net;
  std::vector<Signal> in;
  for (int i = 0; i < 6; ++i) in.push_back(net.create_pi());
  std::vector<Signal> chain_in;
  for (int i = 0; i < 12; ++i) chain_in.push_back(net.create_pi());

  auto and3 = [&](Signal x, Signal y, Signal z) {
    return net.create_and(net.create_and(x, y), z);
  };
  const Signal t1 = net.create_and(and3(in[0], in[1], in[2]), in[3]);
  const Signal t2 = net.create_and(net.create_and(in[0], in[1]),
                                   net.create_and(in[2], in[4]));
  const Signal t3 = net.create_and(in[0], and3(in[1], in[2], in[5]));
  const Signal po2 = net.create_or(net.create_or(t1, t2), t3);

  Signal chain = chain_in[0];
  for (std::size_t i = 1; i < chain_in.size(); ++i) {
    chain = net.create_and(chain, chain_in[i]);  // left-deep: depth 11
  }
  net.create_po(chain);
  net.create_po(po2);

  AsicMapParams params;
  params.objective = AsicMapParams::Objective::kArea;
  const auto baseline = asic_map(cleanup(net), lib(), params);

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.95;  // only the chain PO is critical
  mch_params.mffc_max_pi = 8;
  const Network mch = build_mch(net, mch_params);
  const auto improved = asic_map(mch, lib(), params);

  EXPECT_LT(improved.area, baseline.area);
  expect_netlist_equivalent(net, improved);
}

}  // namespace
}  // namespace mcs
