/// Tests for the CDCL solver (vs. brute force) and the equivalence checker.

#include <gtest/gtest.h>

#include <vector>

#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

using sat::Lit;
using sat::mk_lit;
using sat::Result;
using sat::Solver;

/// Brute-force SAT oracle for small variable counts.
bool brute_force_sat(int num_vars, const std::vector<std::vector<Lit>>& cls) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool any = false;
      for (const Lit l : c) {
        const bool v = (m >> sat::var_of(l)) & 1;
        if (v != sat::sign_of(l)) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SatSolver, TrivialCases) {
  Solver s;
  const auto v = s.new_var();
  EXPECT_EQ(s.solve(), Result::kSat);
  s.add_clause(mk_lit(v));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(v));
  s.add_clause(mk_lit(v, true));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, UnitPropagationChain) {
  Solver s;
  std::vector<sat::Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_clause(mk_lit(v[i], true), mk_lit(v[i + 1]));  // v[i] -> v[i+1]
  }
  s.add_clause(mk_lit(v[0]));
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_value(v[i]));
}

TEST(SatSolver, PigeonHole) {
  // PHP(4,3): 4 pigeons, 3 holes -- classic small UNSAT instance.
  const int pigeons = 4, holes = 3;
  Solver s;
  std::vector<std::vector<sat::Var>> x(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(mk_lit(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(mk_lit(x[p1][h], true), mk_lit(x[p2][h], true));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, AssumptionsBehaveLikeUnits) {
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause(mk_lit(a, true), mk_lit(b));  // a -> b
  EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b, true)}), Result::kUnsat);
  EXPECT_EQ(s.solve({mk_lit(a)}), Result::kSat);
  EXPECT_TRUE(s.model_value(b));
  // The solver must remain reusable after assumption-UNSAT.
  EXPECT_EQ(s.solve({mk_lit(b, true)}), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
}

class SatRandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomCnf, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(7));
    const int num_clauses =
        static_cast<int>(rng.next_below(5 * num_vars)) + num_vars;
    std::vector<std::vector<Lit>> cls;
    Solver s;
    for (int i = 0; i < num_vars; ++i) s.new_var();
    bool root_conflict = false;
    for (int i = 0; i < num_clauses; ++i) {
      const int len = 1 + static_cast<int>(rng.next_below(3));
      std::vector<Lit> c;
      for (int j = 0; j < len; ++j) {
        c.push_back(mk_lit(static_cast<sat::Var>(rng.next_below(num_vars)),
                           rng.next_bool()));
      }
      cls.push_back(c);
      if (!s.add_clause(c)) root_conflict = true;
    }
    const bool expect_sat = brute_force_sat(num_vars, cls);
    if (root_conflict) {
      EXPECT_FALSE(expect_sat);
      continue;
    }
    const auto r = s.solve();
    EXPECT_EQ(r == Result::kSat, expect_sat) << "seed iteration " << iter;
    if (r == Result::kSat) {
      // The model must satisfy every clause.
      for (const auto& c : cls) {
        bool any = false;
        for (const Lit l : c) {
          if (s.model_value(sat::var_of(l)) != sat::sign_of(l)) any = true;
        }
        EXPECT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCnf, ::testing::Values(1, 2, 3, 4, 5));

TEST(Cnf, GateEncodingsMatchSemantics) {
  // For each gate type, assert SAT count of consistent assignments.
  for (const GateType t : {GateType::kAnd2, GateType::kXor2, GateType::kMaj3,
                           GateType::kXor3}) {
    const int arity = gate_arity(t);
    Solver s;
    const auto y = s.new_var();
    std::vector<sat::Var> in;
    for (int i = 0; i < arity; ++i) in.push_back(s.new_var());
    sat::encode_gate(s, t, mk_lit(y), mk_lit(in[0]), mk_lit(in[1]),
                     arity == 3 ? mk_lit(in[2]) : 0);
    // Every input assignment must force y to the gate's value.
    for (std::uint32_t m = 0; m < (1u << arity); ++m) {
      bool expected = false;
      const bool a = m & 1, b = m & 2, c = m & 4;
      switch (t) {
        case GateType::kAnd2: expected = a && b; break;
        case GateType::kXor2: expected = a != b; break;
        case GateType::kMaj3: expected = (a + b + c) >= 2; break;
        case GateType::kXor3: expected = a ^ b ^ c; break;
        default: break;
      }
      std::vector<Lit> assum;
      for (int i = 0; i < arity; ++i) {
        assum.push_back(mk_lit(in[i], !((m >> i) & 1)));
      }
      assum.push_back(mk_lit(y, !expected));  // assume y == expected
      EXPECT_EQ(s.solve(assum), Result::kSat);
      assum.back() = mk_lit(y, expected);     // assume y != expected
      EXPECT_EQ(s.solve(assum), Result::kUnsat);
    }
  }
}

TEST(Cec, IdenticalNetworksAreEquivalent) {
  const auto net = testing::random_network({.num_gates = 60, .seed = 9});
  EXPECT_EQ(check_equivalence(net, net), CecResult::kEquivalent);
}

TEST(Cec, RestructuredNetworksAreEquivalent) {
  // (a & b) & c vs a & (b & c) with an XOR on top.
  Network n1, n2;
  {
    const auto a = n1.create_pi(), b = n1.create_pi(), c = n1.create_pi();
    n1.create_po(n1.create_xor(n1.create_and(n1.create_and(a, b), c), a));
  }
  {
    const auto a = n2.create_pi(), b = n2.create_pi(), c = n2.create_pi();
    n2.create_po(n2.create_xor(n2.create_and(a, n2.create_and(b, c)), a));
  }
  EXPECT_EQ(check_equivalence(n1, n2), CecResult::kEquivalent);
}

TEST(Cec, MajVsAndOrExpansion) {
  Network n1, n2;
  {
    const auto a = n1.create_pi(), b = n1.create_pi(), c = n1.create_pi();
    n1.create_po(n1.create_maj(a, b, c));
  }
  {
    const auto a = n2.create_pi(), b = n2.create_pi(), c = n2.create_pi();
    n2.create_po(n2.create_or(n2.create_and(a, b),
                              n2.create_and(c, n2.create_or(a, b))));
  }
  EXPECT_EQ(check_equivalence(n1, n2), CecResult::kEquivalent);
}

TEST(Cec, DetectsInequivalence) {
  Network n1, n2;
  {
    const auto a = n1.create_pi(), b = n1.create_pi();
    n1.create_po(n1.create_and(a, b));
  }
  {
    const auto a = n2.create_pi(), b = n2.create_pi();
    n2.create_po(n2.create_or(a, b));
  }
  EXPECT_EQ(check_equivalence(n1, n2), CecResult::kNotEquivalent);
}

TEST(Cec, DetectsSubtleInequivalence) {
  // Difference in exactly one minterm of a 6-input function; random
  // simulation with shared seeds must not mask it.
  Network n1, n2;
  {
    std::vector<Signal> pis;
    for (int i = 0; i < 6; ++i) pis.push_back(n1.create_pi());
    Signal all = n1.constant(true);
    for (const auto s : pis) all = n1.create_and(all, s);
    n1.create_po(all);
  }
  {
    std::vector<Signal> pis;
    for (int i = 0; i < 6; ++i) pis.push_back(n2.create_pi());
    n2.create_po(n2.constant(false));
  }
  EXPECT_EQ(check_equivalence(n1, n2), CecResult::kNotEquivalent);
}

TEST(Cec, SignalEquivalenceInsideNetwork) {
  Network net;
  const auto a = net.create_pi(), b = net.create_pi(), c = net.create_pi();
  const auto r = net.create_and(net.create_and(a, b), c);
  const auto m = net.create_and(a, net.create_and(b, c));
  const auto other = net.create_or(a, c);
  net.create_po(r);
  EXPECT_EQ(check_signals_equivalent(net, r, m), CecResult::kEquivalent);
  EXPECT_EQ(check_signals_equivalent(net, r, !m), CecResult::kNotEquivalent);
  EXPECT_EQ(check_signals_equivalent(net, r, other),
            CecResult::kNotEquivalent);
}

TEST(Cec, RandomNetworkAgainstItsSimulation) {
  // Rebuild each PO function of a small random network as a fresh SOP
  // network; CEC must prove equivalence.
  const auto net = testing::random_network(
      {.num_pis = 5, .num_gates = 25, .num_pos = 3, .seed = 21});
  const auto pos = simulate_pos(net);
  (void)pos;
  EXPECT_EQ(check_equivalence(net, cleanup(net)), CecResult::kEquivalent);
}

}  // namespace
}  // namespace mcs
