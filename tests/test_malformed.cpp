/// Malformed-input regression corpus: truncated, oversized and garbage
/// AIGER / BLIF / NDJSON inputs pushed through every external input
/// surface -- the io readers and the job server's wire protocol.  The
/// contract under test is uniform: hostile bytes raise a typed exception
/// (std::runtime_error for readers, ProtocolError for the protocol) and
/// never crash, hang, or OOM; after absorbing the whole corpus a live
/// JobServer still answers "ping" and completes a valid job.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcs/io/aiger.hpp"
#include "mcs/io/blif_read.hpp"
#include "mcs/server/json.hpp"
#include "mcs/server/protocol.hpp"
#include "mcs/server/server.hpp"

namespace mcs {
namespace {

struct Case {
  const char* label;
  std::string text;
};

// --- AIGER corpus -----------------------------------------------------------

const std::vector<Case>& aiger_corpus() {
  static const std::vector<Case> corpus = {
      {"empty", ""},
      {"bare format token", "aag"},
      {"truncated header", "aag 5 2 0 1"},
      {"unknown format", "agg 1 1 0 1 0\n"},
      {"non-numeric header", "aag one 1 0 1 0\n"},
      {"latches unsupported", "aag 2 1 1 1 0\n2\n"},
      // Header plausibility guard: a few bytes must not drive gigabyte
      // allocations (M and O bound vector reserves).
      {"oversized M", "aag 4000000000 4000000000 0 0 0\n"},
      {"oversized O", "aag 2 1 0 4000000000 1\n2\n"},
      {"I+A exceeds M", "aag 2 1 0 1 4000000000\n2\n"},
      {"odd input literal", "aag 2 1 0 1 0\n3\n2\n"},
      {"input literal beyond M", "aag 2 1 0 1 0\n8\n2\n"},
      {"missing output", "aag 1 1 0 1 0\n2\n"},
      {"truncated and section", "aag 10 2 0 1 7\n2\n4\n6\n"},
      {"odd and lhs", "aag 3 1 0 1 1\n2\n6\n5 2 2\n"},
      {"and literal overflow", "aag 3 1 0 1 1\n2\n6\n6 90 2\n"},
      {"truncated binary body", "aig 3 1 0 1 2\n2\n"},
      // Binary deltas underflow lhs -> r0 wraps -> literal overflow.
      {"binary delta underflow", std::string("aig 2 1 0 1 1\n2\n") +
                                     std::string("\x7f\x01", 2)},
      {"binary garbage body", "aig 4 2 0 1 2\n4\n\xff\xff\xff\xff\xff"},
  };
  return corpus;
}

TEST(MalformedAiger, EveryCaseThrowsCleanly) {
  for (const Case& c : aiger_corpus()) {
    SCOPED_TRACE(c.label);
    std::istringstream is(c.text);
    EXPECT_THROW(read_aiger(is), std::runtime_error);
  }
}

TEST(MalformedAiger, ImplausibleHeaderIsRejectedBeforeAllocation) {
  // The whole point of the guard: the error is the header diagnostic,
  // not bad_alloc from a 4-billion-entry literal table.
  std::istringstream is("aag 4000000000 4000000000 0 0 0\n");
  try {
    read_aiger(is);
    FAIL() << "implausible header accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible header"),
              std::string::npos)
        << e.what();
  }
}

// --- BLIF corpus ------------------------------------------------------------

const std::vector<Case>& blif_corpus() {
  static const std::vector<Case> corpus = {
      {"empty .names", ".model m\n.names\n.end\n"},
      {"latch unsupported",
       ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n"},
      {"subckt unsupported",
       ".model m\n.inputs a\n.outputs y\n.subckt sub a=a y=y\n.end\n"},
      {"cover row outside names", ".model m\n.inputs a\n.outputs y\n1 1\n"},
      {"malformed cover row",
       ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1 1\n.end\n"},
      {"row width mismatch",
       ".model m\n.inputs a b\n.outputs y\n.names a b y\n101 1\n.end\n"},
      {"bad cover character",
       ".model m\n.inputs a\n.outputs y\n.names a y\nz 1\n.end\n"},
      {"mixed onset offset",
       ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"},
      {"undriven signal", ".model m\n.inputs a\n.outputs y\n.end\n"},
      {"multiple drivers",
       ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
       ".names a y\n0 1\n.end\n"},
      {"combinational cycle",
       ".model m\n.inputs a\n.outputs y\n.names x y\n1 1\n"
       ".names y x\n1 1\n.end\n"},
      {"binary garbage", "\xff\x7f garbage \xfe\n\n1 1\n"},
  };
  return corpus;
}

TEST(MalformedBlif, EveryCaseThrowsCleanly) {
  for (const Case& c : blif_corpus()) {
    SCOPED_TRACE(c.label);
    std::istringstream is(c.text);
    EXPECT_THROW(read_blif(is), std::runtime_error);
  }
}

// --- NDJSON protocol corpus -------------------------------------------------

std::vector<Case> protocol_corpus() {
  std::vector<Case> corpus = {
      {"empty line", ""},
      {"not json", "hello server"},
      {"truncated object", R"({"type": "submit", "id": )"},
      {"trailing garbage", R"({"type": "ping"} ping)"},
      {"array not object", R"([1, 2, 3])"},
      {"missing type", R"({"id": "j1"})"},
      {"mistyped type", R"({"type": 7})"},
      {"unknown type", R"({"type": "reboot"})"},
      {"submit without id", R"({"type": "submit", "flow": "gen:adder"})"},
      {"submit empty id", R"({"type": "submit", "id": "", "flow": "f"})"},
      {"submit without flow", R"({"type": "submit", "id": "j1"})"},
      {"mistyped flow", R"({"type": "submit", "id": "j1", "flow": 9})"},
      {"negative timeout",
       R"({"type": "submit", "id": "j1", "flow": "f", "timeout_ms": -5})"},
      {"non-positive weight",
       R"({"type": "submit", "id": "j1", "flow": "f", "weight": 0})"},
      {"bad input format",
       R"({"type": "submit", "id": "j1", "flow": "f",)"
       R"( "input": {"format": "vhdl", "text": "x"}})"},
      {"input missing text",
       R"({"type": "submit", "id": "j1", "flow": "f",)"
       R"( "input": {"format": "aiger"}})"},
      {"cancel without id", R"({"type": "cancel"})"},
      {"lone surrogate escape", R"({"type": "ping", "note": "\udc00"})"},
  };
  // Deep nesting must hit the parser's recursion bound, not the stack.
  std::string deep = R"({"type": "submit", "id": )";
  deep += std::string(4096, '[');
  corpus.push_back({"deep nesting", deep});
  return corpus;
}

TEST(MalformedProtocol, EveryCaseThrowsProtocolOrJsonError) {
  for (const Case& c : protocol_corpus()) {
    SCOPED_TRACE(c.label);
    try {
      server::parse_request(c.text);
      ADD_FAILURE() << "accepted: " << c.label;
    } catch (const server::ProtocolError&) {
    } catch (const server::JsonError&) {
    }
  }
}

// --- the daemon survives the whole corpus -----------------------------------

TEST(MalformedInput, DaemonStaysHealthyAfterAbsorbingTheCorpus) {
  server::JobServer srv(server::ServerOptions{.job_slots = 1});
  std::mutex mutex;
  std::vector<std::string> lines;
  const std::uint64_t client =
      srv.attach([&mutex, &lines](const std::string& line) {
        std::lock_guard<std::mutex> lock(mutex);
        lines.push_back(line);
      });
  auto snapshot = [&mutex, &lines] {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  };

  std::size_t sent = 0;
  for (const Case& c : protocol_corpus()) {
    srv.handle_line(client, c.text);
    // Blank lines are keep-alive no-ops, not protocol errors.
    if (c.text.find_first_not_of(" \t\r\n") != std::string::npos) ++sent;
  }
  // Hostile netlists arrive as *valid* protocol lines wrapping malformed
  // inline inputs -- the reject happens at flow setup, not at parse time.
  for (const Case& c : aiger_corpus()) {
    server::Request req;
    req.kind = server::Request::Kind::kSubmit;
    req.id = "aig" + std::to_string(sent);
    req.flow_spec = "compress2rs";
    req.input_format = "aiger";
    req.input_text = c.text;
    srv.handle_line(client, server::submit_line(req));
    ++sent;
  }
  for (const Case& c : blif_corpus()) {
    server::Request req;
    req.kind = server::Request::Kind::kSubmit;
    req.id = "blif" + std::to_string(sent);
    req.flow_spec = "compress2rs";
    req.input_format = "blif";
    req.input_text = c.text;
    srv.handle_line(client, server::submit_line(req));
    ++sent;
  }

  // Every corpus line got exactly one "error" answer...
  std::size_t errors = 0;
  for (const std::string& line : snapshot()) {
    const server::Json msg = server::Json::parse(line);
    if (msg.find("type")->as_string() == "error") ++errors;
  }
  EXPECT_EQ(errors, sent);
  EXPECT_EQ(srv.counters().protocol_errors + srv.counters().rejected, sent);
  EXPECT_EQ(srv.jobs_in_flight(), 0u);

  // ...and the daemon still talks: ping answers, a real job completes.
  srv.handle_line(client, R"({"type": "ping"})");
  const auto after_ping = snapshot();
  ASSERT_FALSE(after_ping.empty());
  EXPECT_EQ(server::Json::parse(after_ping.back()).find("type")->as_string(),
            "pong");

  server::Request req;
  req.kind = server::Request::Kind::kSubmit;
  req.id = "healthy";
  req.flow_spec = "gen:adder,bits=8; rewrite";
  srv.handle_line(client, server::submit_line(req));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::string status = "TIMEOUT";
  while (std::chrono::steady_clock::now() < deadline) {
    bool done = false;
    for (const std::string& line : snapshot()) {
      const server::Json msg = server::Json::parse(line);
      const server::Json* j = msg.find("job");
      if (j == nullptr || j->as_string() != "healthy") continue;
      if (msg.find("type")->as_string() == "done") {
        status = msg.find("status")->as_string();
        done = true;
      }
    }
    if (done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status, "ok");
  srv.detach(client);
}

}  // namespace
}  // namespace mcs
