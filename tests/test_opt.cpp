/// Tests for the technology-independent optimization passes (the
/// compress2rs-like baseline infrastructure) and the graph mapper.

#include <gtest/gtest.h>

#include "mcs/map/graph_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

class OptPassesPreserveFunction : public ::testing::TestWithParam<int> {};

TEST_P(OptPassesPreserveFunction, AllPasses) {
  const auto net = testing::random_network(
      {.num_pis = 7,
       .num_gates = 100,
       .num_pos = 5,
       .basis = GateBasis::xmg(),
       .seed = static_cast<std::uint64_t>(GetParam())});

  const Network b = balance(net);
  EXPECT_EQ(check_equivalence(net, b), CecResult::kEquivalent) << "balance";

  const Network rf = refactor(net);
  EXPECT_EQ(check_equivalence(net, rf), CecResult::kEquivalent) << "refactor";

  const Network sw = sweep(net);
  EXPECT_EQ(check_equivalence(net, sw), CecResult::kEquivalent) << "sweep";

  const Network rw = rewrite(net);
  EXPECT_EQ(check_equivalence(net, rw), CecResult::kEquivalent) << "rewrite";

  const Network all = compress2rs_like(net, GateBasis::xmg(), 2);
  EXPECT_EQ(check_equivalence(net, all), CecResult::kEquivalent) << "script";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPassesPreserveFunction,
                         ::testing::Values(1, 2, 3, 4));

TEST(Balance, ReducesChainDepth) {
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 16; ++i) pis.push_back(net.create_pi());
  Signal acc = pis[0];
  for (int i = 1; i < 16; ++i) acc = net.create_and(acc, pis[i]);
  net.create_po(acc);
  ASSERT_EQ(net.depth(), 15u);
  const Network b = balance(net);
  EXPECT_EQ(b.depth(), 4u);
  EXPECT_EQ(check_equivalence(net, b), CecResult::kEquivalent);
}

TEST(Balance, BalancesXorChains) {
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(net.create_pi());
  Signal acc = pis[0];
  for (int i = 1; i < 8; ++i) acc = net.create_xor(acc, pis[i]);
  net.create_po(acc);
  const Network b = balance(net);
  EXPECT_EQ(b.depth(), 3u);
}

TEST(Refactor, FactorsRedundantSop) {
  // (abc d) | (ab ce) | (a bcf) with no sharing: refactoring recovers
  // abc & (d|e|f).
  Network net;
  std::vector<Signal> in;
  for (int i = 0; i < 6; ++i) in.push_back(net.create_pi());
  auto and4 = [&](Signal w, Signal x, Signal y, Signal z) {
    return net.create_and(net.create_and(w, x), net.create_and(y, z));
  };
  const Signal t1 = and4(in[0], in[1], in[2], in[3]);
  const Signal t2 = net.create_and(net.create_and(in[0], in[1]),
                                   net.create_and(in[2], in[4]));
  const Signal t3 = net.create_and(in[0], net.create_and(in[1],
                                   net.create_and(in[2], in[5])));
  net.create_po(net.create_or(net.create_or(t1, t2), t3));
  const std::size_t before = net.num_gates();
  const Network rf = refactor(net);
  EXPECT_LT(rf.num_gates(), before);
  EXPECT_EQ(check_equivalence(net, rf), CecResult::kEquivalent);
}

TEST(Sweep, MergesDuplicatedStructure) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  // Same function built twice with different structure.
  const Signal f1 = net.create_and(net.create_and(a, b), c);
  const Signal f2 = net.create_and(a, net.create_and(b, c));
  net.create_po(net.create_xor(f1, net.create_pi("d")));
  net.create_po(net.create_or(f2, net.create_pi("e")));
  const Network sw = sweep(net);
  EXPECT_LT(sw.num_gates(), net.num_gates());
  EXPECT_EQ(check_equivalence(net, sw), CecResult::kEquivalent);
}

TEST(Resub, RecoversSharedSubexpressions) {
  // f = (a&b)&c and g = (a&b)^d computed without sharing the a&b term:
  // resubstitution re-expresses one of them over the other's divisors.
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal d = net.create_pi();
  // Deliberately skewed structures so strashing cannot share.
  const Signal f = net.create_and(net.create_and(a, c), b);
  const Signal g = net.create_xor(net.create_and(net.create_and(a, b), a), d);
  net.create_po(f);
  net.create_po(g);
  const Network rs = resub(net);
  EXPECT_LE(rs.num_gates(), net.num_gates());
  EXPECT_EQ(check_equivalence(net, rs), CecResult::kEquivalent);
}

TEST(Resub, PreservesFunctionOnSuiteCircuit) {
  const Network net = cleanup(
      testing::random_network({.num_pis = 8, .num_gates = 150, .seed = 91}));
  const Network rs = resub(net);
  EXPECT_LE(rs.num_gates(), net.num_gates());
  EXPECT_EQ(check_equivalence(net, rs), CecResult::kEquivalent);
}

TEST(Compress2rsLike, ImprovesRandomLogic) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 200, .num_pos = 6,
       .basis = GateBasis::aig(), .seed = 51});
  ScriptStats stats;
  const Network opt = compress2rs_like(net, GateBasis::aig(), 3, &stats);
  EXPECT_LE(opt.num_gates(), net.num_gates());
  EXPECT_GT(stats.iterations, 0);
  EXPECT_EQ(check_equivalence(net, opt), CecResult::kEquivalent);
}

class GraphMapOnRandomNets : public ::testing::TestWithParam<int> {};

TEST_P(GraphMapOnRandomNets, PreservesFunctionAcrossBases) {
  const auto net = testing::random_network(
      {.num_pis = 7,
       .num_gates = 80,
       .num_pos = 4,
       .basis = GateBasis::aig(),
       .seed = static_cast<std::uint64_t>(GetParam() + 60)});
  for (const GateBasis target : {GateBasis::aig(), GateBasis::mig(),
                                 GateBasis::xmg()}) {
    GraphMapParams params;
    params.target = target;
    GraphMapStats stats;
    const Network mapped = graph_map(net, params, &stats);
    EXPECT_EQ(check_equivalence(net, mapped), CecResult::kEquivalent)
        << target.name();
    EXPECT_GT(stats.num_cuts_selected, 0u);
    if (!target.use_xor) {
      const auto s = network_stats(mapped);
      EXPECT_EQ(s.num_xor2 + s.num_xor3, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphMapOnRandomNets,
                         ::testing::Values(1, 2, 3));

TEST(GraphMap, XmgTargetCompressesParity) {
  // An AIG parity tree collapses dramatically when graph-mapped into XMG.
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(net.create_pi());
  std::vector<Signal> layer = pis;
  while (layer.size() > 1) {
    std::vector<Signal> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const Signal a = layer[i], b = layer[i + 1];
      next.push_back(net.create_or(net.create_and(a, !b),
                                   net.create_and(!a, b)));
    }
    layer = next;
  }
  net.create_po(layer[0]);
  GraphMapParams params;
  params.target = GateBasis::xmg();
  const Network mapped = graph_map(net, params);
  EXPECT_LT(mapped.num_gates(), net.num_gates() / 2);
  EXPECT_EQ(check_equivalence(net, mapped), CecResult::kEquivalent);
}

TEST(GraphMap, IterationReachesFixpointAndMchEscapesIt) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 150, .num_pos = 5,
       .basis = GateBasis::aig(), .seed = 71});

  GraphMapParams params;
  params.target = GateBasis::xmg();
  int iters = 0;
  const Network local_opt = iterate_graph_map(net, params, 16, &iters);
  EXPECT_GT(iters, 0);
  EXPECT_EQ(check_equivalence(net, local_opt), CecResult::kEquivalent);
  // One more plain pass must not improve (fixpoint).
  const Network again = graph_map(local_opt, params);
  EXPECT_GE(again.num_gates(), local_opt.num_gates());

  // The MCH-based variant may keep improving past the local optimum.
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network escaped =
      iterate_mch_graph_map(local_opt, params, mch_params);
  EXPECT_EQ(check_equivalence(net, escaped), CecResult::kEquivalent);
  EXPECT_LE(escaped.num_gates(), local_opt.num_gates());
}

}  // namespace
}  // namespace mcs
