/// Tests for the mcs::sweep parallel SAT-sweeping (fraig) engine:
/// counterexample-driven class refinement (signature-equal but functionally
/// different nodes must be split, never merged), the 1-vs-N-thread
/// bit-identity contract, CEC of input vs fraiged output on the multiplier
/// and adder benches, and the legacy sweep() delegation.

#include <gtest/gtest.h>

#include "mcs/circuits/circuits.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "mcs/sweep/sweep.hpp"

namespace mcs {
namespace {

/// Balanced AND tree over pis[begin, end).
Signal and_tree(Network& net, const std::vector<Signal>& pis,
                std::size_t begin, std::size_t end) {
  if (end - begin == 1) return pis[begin];
  const std::size_t mid = begin + (end - begin) / 2;
  return net.create_and(and_tree(net, pis, begin, mid),
                        and_tree(net, pis, mid, end));
}

/// f = AND(x0..x19) and g = f & x20: g differs from f only on the single
/// assignment x0..x19 = 1, x20 = 0, which `words` random words at this
/// seed never hit (verified below), so the two roots -- built disjointly
/// to defeat the strash -- land in one candidate class and only a SAT
/// counterexample can split them.
struct NeedleNetwork {
  Network net;
  Signal f, g;
};

NeedleNetwork make_needle(int words, std::uint64_t seed) {
  NeedleNetwork out;
  std::vector<Signal> pis;
  for (int i = 0; i < 21; ++i) pis.push_back(out.net.create_pi());
  out.f = and_tree(out.net, pis, 0, 20);
  // Same 20-input conjunction with a different association, so the strash
  // cannot identify it with f structurally.
  Signal g20 = pis[0];
  for (int i = 1; i < 20; ++i) g20 = out.net.create_and(g20, pis[i]);
  out.g = out.net.create_and(g20, pis[20]);
  out.net.create_po(out.f);
  out.net.create_po(out.g);

  // Premise guard: the random words really do not distinguish f and g
  // (both are all-zero: no sample hits the all-ones conjunction).
  RandomSimulation sim(out.net, words, seed);
  EXPECT_TRUE(sim.values_equal(out.f, out.g))
      << "seed/words no longer mask the needle; adjust the premise";
  return out;
}

TEST(Sweep, CexRefinementSplitsSignatureEqualPair) {
  FraigParams params;
  params.sim_words = 64;  // f and g share all 64 signature words
  params.sweep_constants = false;  // force the direct f-vs-g candidate pair
  NeedleNetwork needle = make_needle(params.sim_words, params.sim_seed);

  FraigStats stats;
  const Network result = fraig(needle.net, params, &stats);
  // The engine must disprove the f-vs-g pair (one SAT counterexample),
  // inject the pattern and split the class instead of merging.  (Genuinely
  // equivalent *intermediates* -- chain prefixes vs balanced subtrees --
  // are proven and merged along the way; that is correct behavior.)
  EXPECT_GE(stats.num_disproven, 1u);
  EXPECT_GE(stats.num_patterns_added, 1u);
  EXPECT_EQ(check_equivalence(needle.net, result), CecResult::kEquivalent);
  // Not merged: the two POs still compute different functions.
  ASSERT_EQ(result.num_pos(), 2u);
  EXPECT_NE(result.po_at(0), result.po_at(1));
}

TEST(Sweep, ConstantCandidateIsRefutedNotMerged) {
  FraigParams params;
  params.sim_words = 64;
  NeedleNetwork needle = make_needle(params.sim_words, params.sim_seed);

  // With constant sweeping on, both all-zero roots first pair with the
  // constant node; the counterexamples must refute those merges too.
  FraigStats stats;
  const Network result = fraig(needle.net, params, &stats);
  EXPECT_GE(stats.num_disproven, 1u);
  EXPECT_EQ(check_equivalence(needle.net, result), CecResult::kEquivalent);
  ASSERT_EQ(result.num_pos(), 2u);
  EXPECT_FALSE(result.is_const0(result.po_at(0).node()));
  EXPECT_FALSE(result.is_const0(result.po_at(1).node()));
  EXPECT_NE(result.po_at(0), result.po_at(1));

  // The all-zero roots carry two candidate pairs each (vs the constant and
  // vs their class representative); the dedupe of that path must stay
  // bit-identical across thread counts too.
  for (const int t : {2, 4}) {
    FraigParams pt = params;
    pt.num_threads = t;
    FraigStats st;
    const Network rt = fraig(needle.net, pt, &st);
    EXPECT_TRUE(structurally_identical(result, rt)) << t << " threads";
    EXPECT_EQ(stats.num_disproven, st.num_disproven) << t << " threads";
    EXPECT_EQ(stats.num_proven, st.num_proven) << t << " threads";
  }
}

TEST(Sweep, ConstantNodeIsSwept) {
  // (a&b) & (a&!b) == 0, but through two distinct AND nodes, so the strash
  // rules alone cannot fold it -- only the constant-candidate class can.
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal u = net.create_and(a, b);
  const Signal v = net.create_and(a, !b);
  const Signal zero = net.create_and(u, v);
  net.create_po(net.create_or(zero, net.create_and(a, c)));

  FraigStats stats;
  const Network result = fraig(net, {}, &stats);
  EXPECT_GE(stats.num_proven, 1u);
  EXPECT_EQ(check_equivalence(net, result), CecResult::kEquivalent);
  EXPECT_LT(result.num_gates(), net.num_gates());
}

TEST(Sweep, MergesStructurallyDifferentEquivalents) {
  // The classic sweep case: the same function built twice with different
  // association, reachable from different POs.
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal f1 = net.create_and(net.create_and(a, b), c);
  const Signal f2 = net.create_and(a, net.create_and(b, c));
  net.create_po(net.create_xor(f1, net.create_pi("d")));
  net.create_po(net.create_or(f2, net.create_pi("e")));

  FraigStats stats;
  const Network result = fraig(net, {}, &stats);
  EXPECT_GE(stats.num_proven, 1u);
  EXPECT_LT(result.num_gates(), net.num_gates());
  EXPECT_EQ(check_equivalence(net, result), CecResult::kEquivalent);
}

TEST(Sweep, ThreadCountBitIdentity) {
  // The determinism contract: identical output network for 1 vs N threads,
  // including under the (finite) default conflict limit.
  const Network net = expand_to_aig(circuits::multiplier(8));
  FraigParams p1;
  p1.num_threads = 1;
  FraigStats s1;
  const Network r1 = fraig(net, p1, &s1);
  for (const int t : {2, 4, 8}) {
    FraigParams pt;
    pt.num_threads = t;
    FraigStats st;
    const Network rt = fraig(net, pt, &st);
    EXPECT_TRUE(structurally_identical(r1, rt)) << t << " threads";
    EXPECT_EQ(s1.num_proven, st.num_proven) << t << " threads";
    EXPECT_EQ(s1.num_disproven, st.num_disproven) << t << " threads";
    EXPECT_EQ(s1.num_unknown, st.num_unknown) << t << " threads";
  }
}

TEST(Sweep, Adder256CecEquivalent) {
  // Ripple-carry adder: tractable miters, so the full formal check runs.
  const Network net = expand_to_aig(circuits::adder(256));
  FraigParams params;
  params.num_threads = 4;
  const Network result = fraig(net, params);
  EXPECT_LE(result.num_gates(), net.num_gates());
  CecOptions copts;
  copts.num_threads = 4;
  EXPECT_EQ(check_equivalence(net, result, copts), CecResult::kEquivalent);
}

TEST(Sweep, Mult64CecNotFalsified) {
  // 64-bit multiplier (~44k AIG gates).  Multiplier miters are SAT-hard,
  // so the formal stage runs under a conflict budget: the verdict must
  // never be NotEquivalent (kUnknown is an accepted resource-limit answer,
  // and the 64-word random-simulation stage must already agree).
  const Network net = expand_to_aig(circuits::multiplier(64));
  FraigParams params;
  params.num_threads = 4;
  const Network result = fraig(net, params);
  EXPECT_LE(result.num_gates(), net.num_gates());
  EXPECT_EQ(sim_falsify(net, result, 64, 0xf4a16, 4), -1);
  CecOptions copts;
  copts.num_threads = 4;
  copts.conflict_limit = 500;  // per PO batch; every batch burns it fully
  EXPECT_NE(check_equivalence(net, result, copts), CecResult::kNotEquivalent);
}

TEST(Sweep, AdderMiterCollapsesToConstants) {
  // The classic fraig-as-CEC workload: one network holding two structurally
  // disjoint 256-bit adders (the native XOR3/MAJ3 form and its AND2
  // expansion) with pairwise-XORed POs.  Every carry/sum pair is locally
  // provable, so the engine must prove the whole chain (hundreds of pairs,
  // fanned out in parallel batches) and collapse every PO to constant 0 --
  // and do so bit-identically for 1 vs N threads.
  const Network xmg = circuits::adder(256);
  const Network aig = expand_to_aig(xmg);
  Network miter;
  std::vector<Signal> pis;
  for (std::size_t i = 0; i < aig.num_pis(); ++i) {
    pis.push_back(miter.create_pi());
  }
  for (std::size_t i = 0; i < aig.num_pos(); ++i) {
    const Signal pa = copy_cone(aig, miter, aig.po_at(i), pis);
    const Signal pb = copy_cone(xmg, miter, xmg.po_at(i), pis);
    miter.create_po(miter.create_xor(pa, pb));
  }

  FraigParams p1;
  p1.num_threads = 1;
  FraigStats s1;
  const Network r1 = fraig(miter, p1, &s1);
  EXPECT_GT(s1.num_proven, 500u);
  EXPECT_EQ(r1.num_gates(), 0u);
  for (std::size_t i = 0; i < r1.num_pos(); ++i) {
    EXPECT_EQ(r1.po_at(i), r1.constant(false)) << "PO " << i;
  }

  FraigParams p4;
  p4.num_threads = 4;
  const Network r4 = fraig(miter, p4);
  EXPECT_TRUE(structurally_identical(r1, r4));
}

TEST(Sweep, LegacySweepDelegatesToEngine) {
  // sweep() is a thin wrapper: same engine, classic defaults -- and the
  // fraig output is never worse in gate count than the legacy entry point.
  const Network net = expand_to_aig(circuits::multiplier(8));
  SweepParams sp;
  sp.num_threads = 1;
  const Network legacy = sweep(net, sp);
  FraigParams fp;  // fraig defaults == SweepParams defaults
  const Network direct = fraig(net, fp);
  EXPECT_TRUE(structurally_identical(legacy, direct));
  EXPECT_LE(direct.num_gates(), legacy.num_gates());
  // Full formal checks of fraig outputs live in the adder/multiplier CEC
  // tests above; an 8-bit multiplier miter alone costs tens of seconds.
  EXPECT_EQ(sim_falsify(net, legacy, 64, 0x5eed, 1), -1);
}

TEST(Sweep, FlowFraigPassRunsAndVerifies) {
  flow::FlowContext ctx;
  ctx.par.num_threads = 2;
  const flow::FlowReport r =
      flow::run_flow("gen:multiplier,bits=6; fraig; cec", ctx);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Sweep, HugeRoundBudgetDoesNotInflateMemory) {
  // The simulation reserve is decoupled from the round budget: a huge
  // `rounds` value must neither overflow nor pre-allocate rounds*words of
  // memory; the engine just stops refining when the reserve runs dry.
  flow::FlowContext ctx;
  const flow::FlowReport r = flow::run_flow(
      "gen:multiplier,bits=6; fraig:rounds=268435456; cec", ctx);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Sweep, ParShardedFraigMatchesFlowContract) {
  // `par:pass=fraig` shard compatibility: runs, verifies, and is
  // bit-identical for 1 vs 4 threads.
  flow::FlowContext c1;
  c1.par.num_threads = 1;
  c1.par.partition.max_gates = 80;
  const flow::FlowReport r1 =
      flow::run_flow("gen:multiplier,bits=6; par:pass=fraig; cec", c1);
  EXPECT_TRUE(r1.ok) << r1.error;
  flow::FlowContext c4;
  c4.par.num_threads = 4;
  c4.par.partition.max_gates = 80;
  const flow::FlowReport r4 =
      flow::run_flow("gen:multiplier,bits=6; par:pass=fraig; cec", c4);
  EXPECT_TRUE(r4.ok) << r4.error;
  EXPECT_TRUE(structurally_identical(c1.net, c4.net));
}

}  // namespace
}  // namespace mcs
