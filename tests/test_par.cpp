/// Unit tests for the mcs::par subsystem: thread pool semantics, partition
/// + reassemble round trips (CEC-equivalent to the original) for both
/// strategies, choice preservation across sharding, and the determinism
/// contract (1 thread vs N threads yield bit-identical networks and LUT
/// mappings).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/partition.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

// --- thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([i, &sum]() {
      sum.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[i].get(), i * i);
  EXPECT_EQ(sum.load(), 100);
  pool.wait_idle();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(-1), 1u);
}

// --- partitioner ----------------------------------------------------------

/// Every gate-rooted PO of \p net must be produced by some shard.
void expect_pos_covered(const Network& net, const PartitionSet& parts) {
  std::set<NodeId> produced;
  for (const auto& p : parts.parts) {
    EXPECT_EQ(p.net.num_pis(), p.inputs.size());
    EXPECT_EQ(p.net.num_pos(), p.outputs.size());
    for (const NodeId n : p.outputs) produced.insert(n);
  }
  for (const auto s : net.pos()) {
    if (net.is_gate(s.node())) {
      EXPECT_TRUE(produced.count(s.node())) << "PO root not exported";
    }
  }
}

TEST(Partition, ConesCoverEveryPo) {
  const Network net = circuits::adder(32);
  PartitionParams params;
  params.strategy = PartitionStrategy::kOutputCones;
  params.max_gates = 40;
  const PartitionSet parts = partition_network(net, params);
  EXPECT_GT(parts.parts.size(), 1u);
  expect_pos_covered(net, parts);
}

TEST(Partition, WindowsCoverEveryPoWithoutDuplication) {
  const Network net = circuits::multiplier(8);
  PartitionParams params;
  params.max_gates = 150;  // default strategy: level windows
  const PartitionSet parts = partition_network(net, params);
  EXPECT_GT(parts.parts.size(), 1u);
  expect_pos_covered(net, parts);
  // Internal boundaries mean zero duplication: total shard gates equal the
  // PO-reachable gate count (this is what keeps multipliers tractable).
  std::size_t shard_gates = 0;
  for (const auto& p : parts.parts) shard_gates += p.net.num_gates();
  std::size_t reachable = 0;
  for (const NodeId n : topo_order(net)) {
    if (net.is_gate(n)) ++reachable;
  }
  EXPECT_EQ(shard_gates, reachable);
}

TEST(Partition, RespectsMaxPartitions) {
  const Network net = circuits::adder(64);
  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams params;
    params.strategy = strategy;
    params.max_gates = 10;
    params.max_partitions = 4;
    const PartitionSet parts = partition_network(net, params);
    EXPECT_LE(parts.parts.size(), 4u);
    EXPECT_GT(parts.parts.size(), 1u);
  }
}

TEST(Partition, RoundTripIsEquivalentOnAdderBothStrategies) {
  const Network net = circuits::adder(48);
  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams params;
    params.strategy = strategy;
    params.max_gates = 60;
    const PartitionSet parts = partition_network(net, params);
    EXPECT_GT(parts.parts.size(), 1u);
    const Network back = reassemble(net, parts);
    EXPECT_EQ(back.num_pis(), net.num_pis());
    EXPECT_EQ(back.num_pos(), net.num_pos());
    EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
  }
}

TEST(Partition, RoundTripIsEquivalentOnMultiplierBothStrategies) {
  const Network net = circuits::multiplier(8);
  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams params;
    params.strategy = strategy;
    params.max_gates = 150;
    const PartitionSet parts = partition_network(net, params);
    EXPECT_GT(parts.parts.size(), 1u);
    const Network back = reassemble(net, parts);
    EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
  }
}

TEST(Partition, RoundTripHandlesDegeneratePos) {
  // POs referencing constants and PIs directly must survive sharding.
  Network net;
  const Signal a = net.create_pi("a");
  const Signal b = net.create_pi("b");
  net.create_po(net.constant(true), "const1");
  net.create_po(!a, "na");
  net.create_po(net.create_and(a, b), "ab");
  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams params;
    params.strategy = strategy;
    params.max_gates = 1;
    const PartitionSet parts = partition_network(net, params);
    const Network back = reassemble(net, parts);
    EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
    EXPECT_EQ(back.po_name(0), "const1");
  }
}

TEST(Partition, KeepChoicesCarriesClassesIntoShards) {
  const Network net = expand_to_aig(circuits::adder(24));
  MchParams mch;
  mch.candidate_basis = GateBasis::xmg();
  const Network choices = build_mch(net, mch);
  ASSERT_GT(choices.num_choices(), 0u);

  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams params;
    params.strategy = strategy;
    params.max_gates = 80;
    params.keep_choices = true;
    const PartitionSet parts = partition_network(choices, params);
    std::size_t shard_choices = 0;
    for (const auto& p : parts.parts) shard_choices += p.net.num_choices();
    EXPECT_GT(shard_choices, 0u);

    const Network back = reassemble(choices, parts, {.keep_choices = true});
    EXPECT_GT(back.num_choices(), 0u);
    EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
  }
}

TEST(Partition, ParallelShardConstructionIsBitIdentical) {
  // The shard-construction fan-out (and the parallel reassemble pre-pass)
  // must produce exactly the serial result, for both strategies.
  const Network net = expand_to_aig(circuits::multiplier(8));
  for (const auto strategy : {PartitionStrategy::kLevelWindows,
                              PartitionStrategy::kOutputCones}) {
    PartitionParams serial;
    serial.strategy = strategy;
    serial.max_gates = 150;
    serial.num_threads = 1;
    PartitionParams parallel = serial;
    parallel.num_threads = 4;

    const PartitionSet ps = partition_network(net, serial);
    const PartitionSet pp = partition_network(net, parallel);
    ASSERT_EQ(ps.parts.size(), pp.parts.size());
    for (std::size_t i = 0; i < ps.parts.size(); ++i) {
      EXPECT_EQ(ps.parts[i].inputs, pp.parts[i].inputs) << "shard " << i;
      EXPECT_EQ(ps.parts[i].outputs, pp.parts[i].outputs) << "shard " << i;
      EXPECT_TRUE(structurally_identical(ps.parts[i].net, pp.parts[i].net))
          << "shard " << i;
    }

    const Network rs = reassemble(net, ps, {.num_threads = 1});
    const Network rp = reassemble(net, ps, {.num_threads = 4});
    EXPECT_TRUE(structurally_identical(rs, rp));
    EXPECT_EQ(check_equivalence(net, rs), CecResult::kEquivalent);
  }
}

// --- parallel drivers -----------------------------------------------------

TEST(ParEngine, ParOptimizeIsEquivalentAndDeterministic) {
  const Network net = expand_to_aig(circuits::multiplier(8));
  ParParams one;
  one.num_threads = 1;
  one.partition.max_gates = 120;
  ParParams four = one;
  four.num_threads = 4;

  ParStats stats;
  const Network r1 = par_optimize(net, GateBasis::xmg(), 2, one, &stats);
  EXPECT_GT(stats.num_partitions, 1u);
  const Network r4 = par_optimize(net, GateBasis::xmg(), 2, four);

  EXPECT_EQ(check_equivalence(net, r1), CecResult::kEquivalent);
  EXPECT_LT(r1.num_gates(), net.num_gates());
  EXPECT_TRUE(structurally_identical(r1, r4))
      << "par_optimize must be bit-identical for any thread count";
}

TEST(ParEngine, ParOptimizeReducesRandomNetworks) {
  const auto net = testing::random_network({.num_pis = 10,
                                            .num_gates = 400,
                                            .num_pos = 16,
                                            .basis = GateBasis::xmg(),
                                            .seed = 7});
  ParParams params;
  params.num_threads = 2;
  params.partition.max_gates = 100;
  const Network opt = par_optimize(net, GateBasis::xmg(), 2, params);
  EXPECT_EQ(check_equivalence(net, opt), CecResult::kEquivalent);
  EXPECT_LE(opt.num_gates(), net.num_gates());
}

TEST(ParEngine, ParMchAddsChoicesAndStaysEquivalent) {
  const Network net = expand_to_aig(circuits::adder(24));
  ParParams params;
  params.num_threads = 2;
  params.partition.max_gates = 80;
  MchStats mch_stats;
  const Network choices = par_mch(net, {}, params, nullptr, &mch_stats);
  EXPECT_GT(mch_stats.num_choices_added, 0u);
  EXPECT_GT(choices.num_choices(), 0u);
  EXPECT_EQ(check_equivalence(net, choices), CecResult::kEquivalent);

  ParParams one = params;
  one.num_threads = 1;
  const Network c1 = par_mch(net, {}, one);
  EXPECT_TRUE(structurally_identical(c1, choices))
      << "par_mch must be bit-identical for any thread count";
}

TEST(ParEngine, ParMapLutMatchesFunctionAndIsDeterministic) {
  const Network net = circuits::multiplier(8);
  ParParams one;
  one.num_threads = 1;
  one.partition.max_gates = 120;
  ParParams four = one;
  four.num_threads = 4;

  LutMapStats ms;
  const LutNetwork l1 = par_map_lut(net, {}, one, nullptr, &ms);
  EXPECT_EQ(ms.num_luts, l1.size());
  const LutNetwork l4 = par_map_lut(net, {}, four);
  EXPECT_TRUE(l1 == l4)
      << "par_map_lut must be bit-identical for any thread count";

  // Functional check of the stitched LUT network against the source.
  const Network back = lut_network_to_network(l1);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(ParEngine, ParMapLutStrashesDuplicatedConeLogic) {
  // Cone shards of a multiplier duplicate most of the array; the stitch's
  // LUT-level strashing must fold identical sub-mappings back and the
  // result must stay functionally correct.
  const Network net = circuits::multiplier(8);
  ParParams cones;
  cones.num_threads = 1;
  cones.partition.strategy = PartitionStrategy::kOutputCones;
  cones.partition.max_gates = 150;
  const LutNetwork lc = par_map_lut(net, {}, cones);
  const Network back = lut_network_to_network(lc);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(ParEngine, ChoiceAwareParMapLutBitIdenticalAcrossThreads) {
  // The kernel-refactor determinism gate: choice-aware mapping (arena cut
  // enumeration + choice merging + open-addressed strash in the shards)
  // must stay bit-identical between 1 worker and N workers, and the result
  // must be functionally equivalent to the source.
  const Network net = expand_to_aig(circuits::multiplier(8));
  ParParams one;
  one.num_threads = 1;
  one.partition.max_gates = 150;
  const Network choices = par_mch(net, {}, one);
  ASSERT_GT(choices.num_choices(), 0u);

  LutMapParams mp;
  mp.use_choices = true;
  mp.lut_size = 5;
  const LutNetwork l1 = par_map_lut(choices, mp, one);
  for (const int threads : {2, 8}) {
    ParParams many = one;
    many.num_threads = threads;
    const LutNetwork ln = par_map_lut(choices, mp, many);
    EXPECT_TRUE(l1 == ln)
        << "par_map_lut diverged at " << threads << " threads";
  }
  const Network back = lut_network_to_network(l1);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(ParEngine, FullParallelFlowOnChoiceNetwork) {
  // popt -> pmch -> pmap_lut, all partitioned, verified end to end.
  const Network net = circuits::adder(32);
  ParParams params;
  params.num_threads = 2;
  params.partition.max_gates = 100;
  const Network opt = par_optimize(net, GateBasis::xmg(), 1, params);
  const Network choices = par_mch(opt, {}, params);
  const LutNetwork luts = par_map_lut(choices, {}, params);
  const Network back = lut_network_to_network(luts);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(ParEngine, FullParallelFlowOnMultiplier) {
  // The structure that defeats cone partitioning: global sharing.  The
  // window strategy keeps it tractable end to end.
  const Network net = expand_to_aig(circuits::multiplier(8));
  ParParams params;
  params.num_threads = 2;
  params.partition.max_gates = 200;
  const Network opt = par_optimize(net, GateBasis::xmg(), 1, params);
  const Network choices = par_mch(opt, {}, params);
  const LutNetwork luts = par_map_lut(choices, {}, params);
  const Network back = lut_network_to_network(luts);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

}  // namespace
}  // namespace mcs
