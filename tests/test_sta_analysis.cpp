/// Tests for the STA module and the choice-network analysis.

#include <gtest/gtest.h>

#include <sstream>

#include "mcs/choice/analysis.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/map/sta.hpp"
#include "mcs/network/network_utils.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

const TechLibrary& lib() {
  static const TechLibrary l = TechLibrary::asap7_mini();
  return l;
}

TEST(Sta, ArrivalMatchesMapperDelay) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 120, .num_pos = 5, .seed = 41});
  const auto m = asic_map(net, lib());
  const TimingInfo t = analyze_timing(m);
  EXPECT_NEAR(t.clock, m.delay, 1e-6)
      << "STA must agree with the mapper's reported delay";
}

TEST(Sta, SlacksAreNonNegativeAndZeroOnCriticalPath) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 150, .num_pos = 4, .seed = 42});
  const auto m = asic_map(net, lib());
  const TimingInfo t = analyze_timing(m);
  for (std::size_t r = 0; r < t.arrival.size(); ++r) {
    EXPECT_GE(t.slack(r), -1e-9) << "ref " << r;
  }
  const auto path = critical_path(m, t);
  ASSERT_GE(path.size(), 2u);
  // Path is monotone in arrival and ends at the clock.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].arrival, path[i - 1].arrival);
  }
  EXPECT_NEAR(path.back().arrival, t.clock, 1e-9);
  // Every step of the critical path has (near) zero slack.
  for (const auto& s : path) {
    EXPECT_NEAR(t.slack(s.ref), 0.0, 1e-6);
  }
}

TEST(Sta, PathStartsAtPrimaryInput) {
  const auto net = testing::random_network({.num_gates = 80, .seed = 43});
  const auto m = asic_map(net, lib());
  const auto path = critical_path(m, analyze_timing(m));
  ASSERT_FALSE(path.empty());
  EXPECT_LT(path.front().ref, m.num_pis);
  EXPECT_TRUE(path.front().cell_name.empty());
}

TEST(Sta, ReportIsWellFormed) {
  const auto net = testing::random_network({.num_gates = 60, .seed = 44});
  const auto m = asic_map(net, lib());
  std::stringstream ss;
  report_timing(m, ss);
  EXPECT_NE(ss.str().find("critical path"), std::string::npos);
  EXPECT_NE(ss.str().find("slack histogram"), std::string::npos);
}

TEST(ChoiceAnalysis, CountsClassesAndMembers) {
  Network net;
  const auto a = net.create_pi(), b = net.create_pi(), c = net.create_pi();
  const auto r = net.create_and(net.create_and(a, b), c);
  const auto m1 = net.create_and(a, net.create_and(b, c));
  const auto m2 = net.create_and(b, net.create_and(a, c));
  net.create_po(r);
  net.add_choice(r.node(), m1.node(), false);
  net.add_choice(r.node(), m2.node(), false);
  const auto an = analyze_choices(net);
  EXPECT_EQ(an.num_classes, 1u);
  EXPECT_EQ(an.num_members, 2u);
  EXPECT_EQ(an.max_class_size, 2u);
  EXPECT_DOUBLE_EQ(an.avg_class_size, 2.0);
}

TEST(ChoiceAnalysis, DetectsHeterogeneity) {
  // AIG original + XMG candidates: candidate gates should be largely
  // foreign (MAJ/XOR) primitives.
  const auto input = testing::random_network({.num_pis = 6,
                                              .num_gates = 80,
                                              .num_pos = 4,
                                              .basis = GateBasis::aig(),
                                              .seed = 45});
  MchParams xmg_params;
  xmg_params.candidate_basis = GateBasis::xmg();
  const auto xmg_mch = build_mch(input, xmg_params);
  const auto hetero = analyze_choices(xmg_mch);
  EXPECT_GT(hetero.heterogeneity, 0.0);
  EXPECT_GT(hetero.num_classes, 0u);

  // AIG candidates on an AIG original: zero heterogeneity by definition.
  MchParams aig_params;
  aig_params.candidate_basis = GateBasis::aig();
  const auto aig_mch = build_mch(input, aig_params);
  EXPECT_DOUBLE_EQ(analyze_choices(aig_mch).heterogeneity, 0.0);
}

TEST(ChoiceAnalysis, ReportIsWellFormed) {
  const auto input = testing::random_network({.num_gates = 50, .seed = 46});
  const auto mch = build_mch(input, {});
  std::stringstream ss;
  report_choices(mch, ss);
  EXPECT_NE(ss.str().find("choice network:"), std::string::npos);
  EXPECT_NE(ss.str().find("heterogeneity"), std::string::npos);
}

}  // namespace
}  // namespace mcs
