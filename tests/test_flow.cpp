/// Unit tests for the mcs::flow layer: validated scalar parsing, pass
/// registry invariants, spec-string parse/validate round trips (including
/// malformed specs), end-to-end run_flow() equivalence against hand-wired
/// pass sequences, the generic par_run determinism contract over registered
/// passes, and the README pass table (auto-checked against the registry).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/server/json.hpp"

namespace mcs {
namespace {

using flow::Flow;
using flow::FlowContext;
using flow::FlowError;
using flow::FlowReport;
using flow::PassArgs;
using flow::PassInfo;
using flow::PassRegistry;

// --- validated scalar parsing ----------------------------------------------

TEST(FlowParse, IntRejectsJunk) {
  EXPECT_EQ(flow::parse_int("64"), 64);
  EXPECT_EQ(flow::parse_int(" -3 "), -3);
  EXPECT_FALSE(flow::parse_int("").has_value());
  EXPECT_FALSE(flow::parse_int("abc").has_value());
  EXPECT_FALSE(flow::parse_int("12x").has_value());
  EXPECT_FALSE(flow::parse_int("1.5").has_value());
  EXPECT_FALSE(flow::parse_int("99999999999999999999999").has_value());
}

TEST(FlowParse, DoubleRejectsJunk) {
  EXPECT_DOUBLE_EQ(*flow::parse_double("0.9"), 0.9);
  EXPECT_DOUBLE_EQ(*flow::parse_double("2"), 2.0);
  EXPECT_FALSE(flow::parse_double("").has_value());
  EXPECT_FALSE(flow::parse_double("0.9x").has_value());
  EXPECT_FALSE(flow::parse_double("ratio").has_value());
}

TEST(FlowParse, BoolAndBasis) {
  EXPECT_EQ(flow::parse_bool("true"), true);
  EXPECT_EQ(flow::parse_bool("0"), false);
  EXPECT_FALSE(flow::parse_bool("yes").has_value());
  EXPECT_EQ(*flow::parse_basis("xmg"), GateBasis::xmg());
  EXPECT_EQ(*flow::parse_basis("aig"), GateBasis::aig());
  EXPECT_FALSE(flow::parse_basis("qmg").has_value());
}

// --- registry ---------------------------------------------------------------

TEST(FlowRegistry, EveryRegisteredPassIsFindable) {
  const auto all = PassRegistry::instance().all();
  ASSERT_FALSE(all.empty());
  std::set<std::string> names;
  for (const PassInfo* pass : all) {
    EXPECT_EQ(PassRegistry::instance().find(pass->name), pass);
    EXPECT_TRUE(names.insert(pass->name).second)
        << "duplicate pass " << pass->name;
    EXPECT_FALSE(pass->summary.empty()) << pass->name;
    EXPECT_TRUE(static_cast<bool>(pass->run)) << pass->name;
  }
  EXPECT_EQ(PassRegistry::instance().find("no_such_pass"), nullptr);
}

TEST(FlowRegistry, CoversTheWholeShellVocabulary) {
  // Every command of the pre-registry shell must exist as a pass.
  for (const char* name :
       {"gen", "read_aiger", "write_aiger", "write_blif", "write_verilog",
        "ps", "strash", "to", "balance", "rewrite", "refactor", "resub",
        "sweep", "compress2rs", "dch", "mch", "map_lut", "map_asic",
        "graph_map", "threads", "partsize", "popt", "pmch", "pmap_lut",
        "cec", "seed", "par"}) {
    EXPECT_NE(PassRegistry::instance().find(name), nullptr) << name;
  }
}

TEST(FlowRegistry, HelpMentionsEveryPass) {
  const std::string help = PassRegistry::instance().help();
  for (const PassInfo* pass : PassRegistry::instance().all()) {
    EXPECT_NE(help.find("  " + pass->name), std::string::npos) << pass->name;
  }
}

// --- arg binding ------------------------------------------------------------

TEST(FlowArgs, PositionalAndKeyedBindingAgree) {
  const PassInfo* gen = PassRegistry::instance().find("gen");
  ASSERT_NE(gen, nullptr);
  const PassArgs positional = PassArgs::bind(*gen, {"multiplier", "8"});
  const PassArgs keyed = PassArgs::bind(*gen, {"bits=8", "name=multiplier"});
  EXPECT_EQ(positional.get_string("name"), "multiplier");
  EXPECT_EQ(positional.get_int("bits"), 8);
  EXPECT_EQ(keyed.get_string("name"), "multiplier");
  EXPECT_EQ(keyed.get_int("bits"), 8);
}

TEST(FlowArgs, DefaultsApplyWhenUnbound) {
  const PassInfo* mch = PassRegistry::instance().find("mch");
  ASSERT_NE(mch, nullptr);
  const PassArgs args = PassArgs::bind(*mch, {});
  EXPECT_EQ(args.get_basis("basis"), GateBasis::xmg());
  EXPECT_DOUBLE_EQ(args.get_double("ratio"), 0.9);
  EXPECT_FALSE(args.has("ratio"));
}

TEST(FlowArgs, RejectsBadBindings) {
  const PassInfo* gen = PassRegistry::instance().find("gen");
  const PassInfo* read = PassRegistry::instance().find("read_aiger");
  ASSERT_NE(gen, nullptr);
  ASSERT_NE(read, nullptr);
  EXPECT_THROW(PassArgs::bind(*gen, {"bits=junk"}), FlowError);
  EXPECT_THROW(PassArgs::bind(*gen, {"bits=1.5"}), FlowError);
  EXPECT_THROW(PassArgs::bind(*gen, {"nope=1"}), FlowError);
  EXPECT_THROW(PassArgs::bind(*gen, {"adder", "8", "surplus"}), FlowError);
  EXPECT_THROW(PassArgs::bind(*gen, {"bits=1", "bits=2"}), FlowError);
  EXPECT_THROW(PassArgs::bind(*read, {}), FlowError);  // missing required
}

// --- flow spec parsing ------------------------------------------------------

TEST(FlowSpec, ParsesAndCanonicalizes) {
  const Flow f = Flow::parse(
      "gen:multiplier,bits=8 ; compress2rs ; mch:basis=xmg,ratio=0.9; "
      "map_lut:k=6;cec");
  ASSERT_EQ(f.stages().size(), 5u);
  EXPECT_EQ(f.stages()[0].pass->name, "gen");
  EXPECT_EQ(f.stages()[4].pass->name, "cec");
  EXPECT_EQ(f.canonical(),
            "gen:name=multiplier,bits=8; compress2rs; "
            "mch:basis=xmg,ratio=0.9; map_lut:k=6; cec");
  // A canonical spec re-parses to itself (round trip).
  EXPECT_EQ(Flow::parse(f.canonical()).canonical(), f.canonical());
}

TEST(FlowSpec, MalformedSpecsThrowBeforeExecution) {
  EXPECT_THROW(Flow::parse(""), FlowError);
  EXPECT_THROW(Flow::parse(" ; ; "), FlowError);
  EXPECT_THROW(Flow::parse("no_such_pass"), FlowError);
  EXPECT_THROW(Flow::parse("gen:adder; frobnicate; cec"), FlowError);
  EXPECT_THROW(Flow::parse("gen:bits=oops"), FlowError);
  EXPECT_THROW(Flow::parse("mch:ratio=high"), FlowError);
  EXPECT_THROW(Flow::parse(":bits=2"), FlowError);
  EXPECT_THROW(Flow::parse("map_lut:k=6,k=6"), FlowError);
  // par validates its inner pass and forwarded args at parse time.
  EXPECT_THROW(Flow::parse("par:pass=no_such"), FlowError);
  EXPECT_THROW(Flow::parse("par:pass=cec"), FlowError);
  EXPECT_THROW(Flow::parse("par:pass=rewrite,k=junk"), FlowError);
  EXPECT_THROW(Flow::parse("par:pass=popt"), FlowError);  // no nesting
}

TEST(FlowSpec, EveryParsedStageIsARegistryHit) {
  const Flow f = Flow::parse("gen; balance; rewrite; sweep; map_lut");
  for (const auto& stage : f.stages()) {
    EXPECT_EQ(PassRegistry::instance().find(stage.pass->name), stage.pass);
  }
}

// --- end-to-end flows -------------------------------------------------------

TEST(FlowRun, PaperFlowMatchesHandWiredSequence) {
  // The acceptance flow: opt -> mch -> map_lut -> cec through run_flow()
  // must produce a LUT network structurally identical to the hand-wired
  // sequence of direct pass calls.
  FlowContext ctx;
  const FlowReport report = flow::run_flow(
      "gen:adder,bits=16; compress2rs:rounds=2; mch; map_lut:k=4; cec", ctx);
  EXPECT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.stages.size(), 5u);
  ASSERT_TRUE(ctx.luts.has_value());

  const Network net = circuits::adder(16);
  const Network opt = compress2rs_like(net, GateBasis::xmg(), 2);
  const Network choices = build_mch(opt, MchParams{});
  LutMapParams lut_params;
  lut_params.lut_size = 4;
  const LutNetwork expected = lut_map(choices, lut_params);

  EXPECT_TRUE(*ctx.luts == expected)
      << "run_flow must reproduce the hand-wired pass sequence bit for bit";
  EXPECT_EQ(report.stages.back().pass, "cec");
  EXPECT_EQ(report.stages.back().note, "equivalent (LUT network)");
}

TEST(FlowRun, ReportCarriesPerStageStats) {
  FlowContext ctx;
  const FlowReport report =
      flow::run_flow("gen:adder,bits=16; compress2rs:rounds=2; map_lut:k=4",
                     ctx);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_GT(report.stages[0].gates, 0u);
  EXPECT_LE(report.stages[1].gates, report.stages[0].gates);
  EXPECT_GT(report.stages[2].luts, 0u);
  EXPECT_GT(report.stages[2].lut_depth, 0u);
  EXPECT_GE(report.total_seconds, 0.0);
  // The context history mirrors the report.
  ASSERT_EQ(ctx.history.size(), 3u);
  EXPECT_EQ(ctx.history[2].luts, report.stages[2].luts);
  // JSON serialization is well-formed enough to contain every pass name.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"pass\": \"gen\""), std::string::npos);
  EXPECT_NE(json.find("\"luts\": "), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(FlowRun, MetricsScopeSaysWhichAccumulatorStagesRead) {
  // run_flow gives every flow its own metric domain, so its stage metrics
  // are exact per-flow deltas and say "job".  A bare run_stage on a
  // domain-less context keeps the pre-v2 semantics -- deltas of the
  // process-global registry, marked "process" -- so JSON consumers can tell
  // which accumulator they are looking at.
  FlowContext scoped;
  const FlowReport job_report = flow::run_flow("gen:adder,bits=8", scoped);
  ASSERT_TRUE(job_report.ok) << job_report.error;
  ASSERT_NE(scoped.domain, nullptr);
  EXPECT_EQ(job_report.stages[0].metrics_scope, "job");
  EXPECT_NE(job_report.stages[0].to_json().find("\"metrics_scope\": \"job\""),
            std::string::npos);

  const flow::Flow gen = flow::Flow::parse("gen:adder,bits=8");
  FlowContext plain;
  const flow::StageReport stage =
      flow::run_stage(plain, *gen.stages()[0].pass, gen.stages()[0].args);
  ASSERT_TRUE(stage.ok) << stage.note;
  EXPECT_EQ(plain.domain, nullptr);
  EXPECT_EQ(stage.metrics_scope, "process");
  EXPECT_NE(stage.to_json().find("\"metrics_scope\": \"process\""),
            std::string::npos);
}

TEST(FlowRun, TransformsInvalidateStaleMappings) {
  // A transform after a mapping must drop the mapped artifacts, so `cec`
  // verifies the *current* network, not a stale LUT mapping.
  FlowContext ctx;
  const FlowReport report = flow::run_flow(
      "gen:adder,bits=8; map_lut:k=4; rewrite; cec", ctx);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(ctx.luts.has_value());
  EXPECT_EQ(report.stages.back().note, "equivalent");  // not "(LUT network)"
  EXPECT_EQ(report.stages.back().luts, 0u);
}

TEST(FlowRun, FailedStageStopsTheFlow) {
  FlowContext ctx;
  // `cec` without a loaded reference fails; `balance` must not run.
  const FlowReport report = flow::run_flow("cec; balance", ctx);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_FALSE(report.stages[0].ok);
  EXPECT_NE(report.error.find("no reference"), std::string::npos)
      << report.error;
}

TEST(FlowRun, SettingsPassesSteerTheParallelDrivers) {
  FlowContext ctx;
  const FlowReport report = flow::run_flow(
      "threads:n=2; partsize:gates=100; gen:adder,bits=32; popt:rounds=1; "
      "cec",
      ctx);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(ctx.par.num_threads, 2);
  EXPECT_EQ(ctx.par.partition.max_gates, 100u);
}

TEST(FlowRun, ParMetaPassMatchesSerialWrapperAndIsDeterministic) {
  // The generic partition-parallel driver over a *registered* pass must be
  // bit-identical for 1 vs N threads, and equivalent to the input.
  FlowContext one;
  one.par.num_threads = 1;
  one.par.partition.max_gates = 120;
  FlowContext four;
  four.par.num_threads = 4;
  four.par.partition.max_gates = 120;

  const std::string spec =
      "gen:multiplier,bits=8; to:aig; par:pass=rewrite,k=4; cec";
  ASSERT_TRUE(flow::run_flow(spec, one).ok);
  ASSERT_TRUE(flow::run_flow(spec, four).ok);
  EXPECT_TRUE(structurally_identical(one.net, four.net))
      << "par:pass=rewrite must be bit-identical for any thread count";
}

// --- generic par_run over registered passes ---------------------------------

/// Wraps a registered flow pass as a ShardPassFn for mcs::par::par_run.
ShardPassFn shard_fn(const PassInfo& pass, const PassArgs& args) {
  return [&pass, args](const Network& shard, std::size_t) {
    flow::FlowContext sub;
    sub.net = shard;
    pass.run(sub, args);
    return std::move(sub.net);
  };
}

TEST(FlowParRun, ArbitraryRegisteredPassIsDeterministicAcrossThreads) {
  const Network net = circuits::multiplier(8);
  for (const char* name : {"rewrite", "compress2rs", "balance"}) {
    const PassInfo* pass = PassRegistry::instance().find(name);
    ASSERT_NE(pass, nullptr) << name;
    ASSERT_TRUE(pass->parallel_ok) << name;
    const PassArgs args = PassArgs::bind(*pass, {});

    ParParams one;
    one.num_threads = 1;
    one.partition.max_gates = 150;
    ParParams four = one;
    four.num_threads = 4;

    const Network r1 = par_run(net, shard_fn(*pass, args), one);
    const Network r4 = par_run(net, shard_fn(*pass, args), four);
    EXPECT_TRUE(structurally_identical(r1, r4))
        << "par_run(" << name << ") must not depend on the thread count";
    EXPECT_EQ(check_equivalence(net, r1), CecResult::kEquivalent) << name;
  }
}

// --- cooperative cancellation -----------------------------------------------

TEST(FlowCancel, TokenSemantics) {
  flow::CancelToken token;
  EXPECT_EQ(token.stop_reason(), nullptr);
  token.set_deadline_after(std::chrono::hours(1));
  EXPECT_EQ(token.stop_reason(), nullptr);
  token.set_deadline_after(std::chrono::nanoseconds(-1));  // disarm
  EXPECT_FALSE(token.deadline_passed());
  token.set_deadline_after(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.deadline_passed());
  EXPECT_STREQ(token.stop_reason(), "timeout");
  token.request_cancel();  // an explicit cancel wins over the deadline
  EXPECT_STREQ(token.stop_reason(), "cancelled");
}

TEST(FlowCancel, PreTrippedTokenStopsBeforeFirstStage) {
  FlowContext ctx;
  ctx.cancel = std::make_shared<flow::CancelToken>();
  ctx.cancel->request_cancel();
  const FlowReport report = flow::run_flow("gen:adder,bits=8; rewrite", ctx);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_FALSE(report.stages[0].ok);
  EXPECT_EQ(report.stages[0].pass, "gen");  // the stage that never ran
  EXPECT_EQ(report.stages[0].note, "cancelled");
  EXPECT_EQ(report.error, "gen: cancelled");
}

TEST(FlowCancel, ExpiredDeadlineStopsWithTimeout) {
  FlowContext ctx;
  ctx.cancel = std::make_shared<flow::CancelToken>();
  ctx.cancel->set_deadline_after(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const FlowReport report = flow::run_flow("gen:adder,bits=8", ctx);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.stages[0].note, "timeout");
}

TEST(FlowCancel, OnStageHookSeesEveryStageIncludingSynthetic) {
  FlowContext ctx;
  ctx.cancel = std::make_shared<flow::CancelToken>();
  std::vector<std::pair<std::string, std::size_t>> seen;
  ctx.on_stage = [&](const flow::StageReport& r, std::size_t index) {
    seen.emplace_back(r.pass, index);
    if (seen.size() == 2) ctx.cancel->request_cancel();
  };
  const FlowReport report =
      flow::run_flow("gen:adder,bits=8; strash; rewrite; balance", ctx);
  EXPECT_FALSE(report.ok);
  // gen and strash ran; rewrite became the synthetic cancelled stage (the
  // hook sees it like any other); balance never appeared.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::size_t>{"gen", 0}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::size_t>{"strash", 1}));
  EXPECT_EQ(seen[2], (std::pair<std::string, std::size_t>{"rewrite", 2}));
  EXPECT_EQ(report.stages.back().note, "cancelled");
}

// --- stage JSON --------------------------------------------------------------

TEST(FlowReportJson, StageJsonParsesWithTheServerParser) {
  // The server streams StageReport::to_json verbatim; the in-repo JSON
  // parser must accept every emitted stage object (escaping, doubles, the
  // nested metrics/spans structure).
  FlowContext ctx;
  const FlowReport report = flow::run_flow("gen:adder,bits=8; map_lut:k=4", ctx);
  ASSERT_TRUE(report.ok);
  for (const flow::StageReport& stage : report.stages) {
    const server::Json parsed = server::Json::parse(stage.to_json());
    ASSERT_TRUE(parsed.is_object());
    EXPECT_EQ(parsed.find("pass")->as_string(), stage.pass);
    EXPECT_EQ(parsed.find("ok")->as_bool(), stage.ok);
    EXPECT_EQ(parsed.find("gates")->as_int(),
              static_cast<std::int64_t>(stage.gates));
    EXPECT_NE(parsed.find("metrics"), nullptr);
    EXPECT_NE(parsed.find("spans"), nullptr);
  }
  const server::Json whole = server::Json::parse(report.to_json());
  EXPECT_TRUE(whole.find("ok")->as_bool());
  EXPECT_EQ(whole.find("stages")->items().size(), report.stages.size());
}

// --- README pass table ------------------------------------------------------

#ifdef MCS_SOURCE_DIR
TEST(FlowDocs, ReadmePassTableMatchesRegistry) {
  std::ifstream in(std::string(MCS_SOURCE_DIR) + "/README.md");
  ASSERT_TRUE(in.good()) << "README.md not found next to the sources";

  // Parse only the "### Registered passes" section; its rows look like:
  // | `name` | params | description |
  std::map<std::string, std::string> documented;  // name -> params cell
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("Registered passes") != std::string::npos;
      continue;
    }
    if (!in_section) continue;
    if (line.rfind("| `", 0) != 0) continue;
    const std::size_t name_end = line.find('`', 3);
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(3, name_end - 3);
    std::size_t cell_start = line.find('|', name_end);
    if (cell_start == std::string::npos) continue;
    ++cell_start;
    const std::size_t cell_end = line.find('|', cell_start);
    if (cell_end == std::string::npos) continue;
    std::string cell = line.substr(cell_start, cell_end - cell_start);
    while (!cell.empty() && cell.front() == ' ') cell.erase(cell.begin());
    while (!cell.empty() && cell.back() == ' ') cell.pop_back();
    documented[name] = cell;
  }

  std::string expected_table;
  for (const PassInfo* pass : PassRegistry::instance().all()) {
    expected_table += "| `" + pass->name + "` | " + flow::params_summary(*pass) +
                      " | " + pass->summary + " |\n";
  }

  for (const PassInfo* pass : PassRegistry::instance().all()) {
    ASSERT_TRUE(documented.count(pass->name))
        << "README pass table is missing `" << pass->name
        << "`; the table must be:\n"
        << expected_table;
    EXPECT_EQ(documented[pass->name], flow::params_summary(*pass))
        << "README params column for `" << pass->name
        << "` is stale; the table must be:\n"
        << expected_table;
  }
  for (const auto& [name, cell] : documented) {
    EXPECT_NE(PassRegistry::instance().find(name), nullptr)
        << "README documents `" << name << "`, which is not registered";
  }
}
#endif

}  // namespace
}  // namespace mcs
