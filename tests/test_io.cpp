/// Tests for AIGER round-tripping and the BLIF/Verilog writers.

#include <gtest/gtest.h>

#include <sstream>

#include "mcs/io/aiger.hpp"
#include "mcs/io/blif_read.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/sim/simulator.hpp"
#include "mcs/sat/cec.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

class AigerRoundTrip : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(AigerRoundTrip, PreservesFunction) {
  const auto [seed, binary] = GetParam();
  const auto net = expand_to_aig(testing::random_network(
      {.num_pis = 6,
       .num_gates = 60,
       .num_pos = 4,
       .basis = GateBasis::xmg(),
       .seed = static_cast<std::uint64_t>(seed)}));
  std::stringstream ss;
  write_aiger(net, ss, binary);
  const Network back = read_aiger(ss);
  ASSERT_EQ(back.num_pis(), net.num_pis());
  ASSERT_EQ(back.num_pos(), net.num_pos());
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndFormats, AigerRoundTrip,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(false, true)));

TEST(Aiger, RejectsNonAig) {
  Network net;
  const auto a = net.create_pi(), b = net.create_pi();
  net.create_po(net.create_xor(a, b));
  std::stringstream ss;
  EXPECT_THROW(write_aiger(net, ss), std::runtime_error);
}

TEST(Aiger, HandlesConstantsAndPassThrough) {
  Network net;
  const auto a = net.create_pi();
  net.create_po(net.constant(true));
  net.create_po(a);
  net.create_po(!a);
  std::stringstream ss;
  write_aiger(net, ss, /*binary=*/false);
  const Network back = read_aiger(ss);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(Blif, WritesNetworkCover) {
  Network net;
  const auto a = net.create_pi("a"), b = net.create_pi("b"),
             c = net.create_pi("c");
  net.create_po(net.create_maj(a, !b, c), "f");
  std::stringstream ss;
  write_blif(net, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find(".model"), std::string::npos);
  EXPECT_NE(text.find(".names a b c"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Blif, WritesLutNetwork) {
  const auto net = testing::random_network({.num_gates = 40, .seed = 5});
  const auto lnet = lut_map(net);
  std::stringstream ss;
  write_blif(lnet, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find(".model"), std::string::npos);
  EXPECT_NE(text.find("lut0"), std::string::npos);
}

TEST(Blif, RoundTripsNetwork) {
  const auto net = testing::random_network(
      {.num_pis = 6, .num_gates = 50, .num_pos = 4, .seed = 77});
  std::stringstream ss;
  write_blif(net, ss);
  const Network back = read_blif(ss);
  ASSERT_EQ(back.num_pis(), net.num_pis());
  ASSERT_EQ(back.num_pos(), net.num_pos());
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(Blif, RoundTripsLutNetwork) {
  const auto net = testing::random_network({.num_gates = 60, .seed = 78});
  const auto lnet = lut_map(net);
  std::stringstream ss;
  write_blif(lnet, ss);
  const Network back = read_blif(ss);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

TEST(Blif, ParsesDontCaresAndOffsetCovers) {
  const std::string text = R"(
.model t
.inputs a b c
.outputs f g h
.names a b c f
1-- 1
-11 1
.names a b g
00 0
01 0
10 0
.names h
1
.end
)";
  std::stringstream ss(text);
  const Network net = read_blif(ss);
  ASSERT_EQ(net.num_pis(), 3u);
  ASSERT_EQ(net.num_pos(), 3u);
  const auto pos = simulate_pos(net);
  for (int m = 0; m < 8; ++m) {
    const bool a = m & 1, b = m & 2, c = m & 4;
    EXPECT_EQ(pos[0].get_bit(m), a || (b && c));
    EXPECT_EQ(pos[1].get_bit(m), a && b) << "offset cover";
    EXPECT_EQ(pos[2].get_bit(m), true) << "constant block";
  }
}

TEST(Blif, RejectsLatchesAndCycles) {
  {
    std::stringstream ss(".model t\n.inputs a\n.outputs q\n"
                         ".latch a q re clk 0\n.end\n");
    EXPECT_THROW(read_blif(ss), std::runtime_error);
  }
  {
    std::stringstream ss(".model t\n.inputs a\n.outputs x\n"
                         ".names y a x\n11 1\n.names x a y\n11 1\n.end\n");
    EXPECT_THROW(read_blif(ss), std::runtime_error);
  }
  {
    std::stringstream ss(".model t\n.inputs a\n.outputs x\n.end\n");
    EXPECT_THROW(read_blif(ss), std::runtime_error) << "undriven output";
  }
}

TEST(Verilog, WritesNetworkAndNetlist) {
  const auto net = testing::random_network({.num_gates = 30, .seed = 6});
  {
    std::stringstream ss;
    write_verilog(net, ss);
    EXPECT_NE(ss.str().find("module top"), std::string::npos);
    EXPECT_NE(ss.str().find("endmodule"), std::string::npos);
  }
  {
    const TechLibrary lib = TechLibrary::asap7_mini();
    const auto mapped = asic_map(net, lib);
    std::stringstream ss;
    write_verilog(mapped, ss);
    EXPECT_NE(ss.str().find("module top"), std::string::npos);
    EXPECT_NE(ss.str().find("INVx1"), std::string::npos) << ss.str();
  }
}

}  // namespace
}  // namespace mcs
