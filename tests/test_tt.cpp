/// Unit tests for single-word and dynamic truth tables.

#include <gtest/gtest.h>

#include "mcs/common/rng.hpp"
#include "mcs/tt/npn.hpp"
#include "mcs/tt/truth_table.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {
namespace {

TEST(Tt6, ProjectionsAreConsistent) {
  for (int v = 0; v < 6; ++v) {
    const Tt6 t = tt6_var(v);
    for (std::uint32_t m = 0; m < 64; ++m) {
      const bool bit = (t >> m) & 1;
      EXPECT_EQ(bit, ((m >> v) & 1) != 0) << "var " << v << " minterm " << m;
    }
  }
}

TEST(Tt6, MaskSizes) {
  EXPECT_EQ(tt6_mask(0), 0x1ull);
  EXPECT_EQ(tt6_mask(1), 0x3ull);
  EXPECT_EQ(tt6_mask(2), 0xfull);
  EXPECT_EQ(tt6_mask(3), 0xffull);
  EXPECT_EQ(tt6_mask(6), ~0ull);
}

TEST(Tt6, CofactorsOfAnd) {
  const Tt6 f = tt6_var(0) & tt6_var(1);
  EXPECT_EQ(tt6_cofactor0(f, 0), tt6_const0());
  EXPECT_EQ(tt6_cofactor1(f, 0), tt6_var(1));
  EXPECT_TRUE(tt6_has_var(f, 0));
  EXPECT_TRUE(tt6_has_var(f, 1));
  EXPECT_FALSE(tt6_has_var(f, 2));
}

TEST(Tt6, FlipVar) {
  const Tt6 f = tt6_var(0) & tt6_var(2);
  const Tt6 g = tt6_flip_var(f, 2);
  EXPECT_EQ(g, tt6_var(0) & ~tt6_var(2));
  EXPECT_EQ(tt6_flip_var(g, 2), f);
}

TEST(Tt6, SwapArbitraryVars) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const Tt6 f = tt6_replicate(rng.next(), 6);
    const int a = static_cast<int>(rng.next_below(6));
    const int b = static_cast<int>(rng.next_below(6));
    const Tt6 g = tt6_swap(f, a, b);
    // Swapping twice is the identity.
    EXPECT_EQ(tt6_swap(g, a, b), f);
    // Pointwise check.
    for (std::uint32_t m = 0; m < 64; ++m) {
      std::uint32_t swapped = m & ~((1u << a) | (1u << b));
      if (m & (1u << a)) swapped |= (1u << b);
      if (m & (1u << b)) swapped |= (1u << a);
      EXPECT_EQ((g >> m) & 1, (f >> swapped) & 1);
    }
  }
}

TEST(Tt6, PermuteMatchesPointwiseDefinition) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const int n = 4;
    const Tt6 f = tt6_replicate(rng.next(), n);
    std::array<int, 6> perm{0, 1, 2, 3, 4, 5};
    for (int i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    const Tt6 g = tt6_permute(f, perm, n);
    // g(x0..x3) = f(y) with y[perm[i]] = x[i].
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      std::uint32_t y = 0;
      for (int i = 0; i < n; ++i) {
        if (m & (1u << i)) y |= (1u << perm[i]);
      }
      EXPECT_EQ((g >> m) & 1, (f >> y) & 1);
    }
  }
}

TEST(Tt6, ShrinkSupportRemovesVacuousVars) {
  // f = x1 & x3 as a 4-var function.
  Tt6 f = tt6_var(1) & tt6_var(3);
  std::array<int, 6> map{};
  const int n = tt6_shrink_support(f, 4, map);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(map[0], 1);
  EXPECT_EQ(map[1], 3);
  EXPECT_EQ(f, tt6_var(0) & tt6_var(1));
}

TEST(Tt6, CountOnes) {
  EXPECT_EQ(tt6_count_ones(tt6_var(0), 1), 1);
  EXPECT_EQ(tt6_count_ones(tt6_var(0), 3), 4);
  EXPECT_EQ(tt6_count_ones(tt6_const1(), 6), 64);
}

TEST(Npn, CanonIsInvariantUnderRandomTransforms) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const int n = 4;
    const Tt6 f = tt6_replicate(rng.next(), n);
    const auto rf = npn_canonicalize_exact(f, n);
    EXPECT_EQ(rf.transform.apply(f), rf.canon);

    // Apply a random NPN transform to f and re-canonicalize.
    NpnTransform t;
    t.num_vars = n;
    for (int i = n - 1; i > 0; --i) {
      std::swap(t.perm[i], t.perm[rng.next_below(i + 1)]);
    }
    t.flips = static_cast<std::uint32_t>(rng.next_below(1u << n));
    t.out_flip = rng.next_bool();
    const Tt6 g = t.apply(f);
    const auto rg = npn_canonicalize_exact(g, n);
    EXPECT_EQ(rf.canon, rg.canon) << "NPN-equivalent functions must share "
                                     "their canonical form";
  }
}

TEST(Npn, MatchReconstructsFunction) {
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    const int n = 4;
    const Tt6 f = tt6_replicate(rng.next(), n);
    // g: a random NPN transform of f.
    NpnTransform t;
    t.num_vars = n;
    for (int i = n - 1; i > 0; --i) {
      std::swap(t.perm[i], t.perm[rng.next_below(i + 1)]);
    }
    t.flips = static_cast<std::uint32_t>(rng.next_below(1u << n));
    t.out_flip = rng.next_bool();
    const Tt6 g = t.apply(f);

    const auto rf = npn_canonicalize_exact(f, n);
    const auto rg = npn_canonicalize_exact(g, n);
    ASSERT_EQ(rf.canon, rg.canon);
    const NpnMatch m = npn_match(rf.transform, rg.transform);

    // Rebuild f from g through the match: f(u) = out ^ g(z),
    // z_j = u[pin_to_leaf[j]] ^ pin_negation[j].
    for (std::uint32_t u = 0; u < (1u << n); ++u) {
      std::uint32_t z = 0;
      for (int j = 0; j < n; ++j) {
        bool bit = (u >> m.pin_to_leaf[j]) & 1;
        if (m.pin_negation & (1u << j)) bit = !bit;
        if (bit) z |= (1u << j);
      }
      bool val = (g >> z) & 1;
      if (m.output_negation) val = !val;
      EXPECT_EQ(val, ((f >> u) & 1) != 0);
    }
  }
}

TEST(Npn4Cache, CachesAndAgreesWithExact) {
  Npn4Cache cache;
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const Tt6 f = tt6_replicate(rng.next(), 4);
    const auto& r = cache.canonicalize(f);
    const auto e = npn_canonicalize_exact(f, 4);
    EXPECT_EQ(r.canon, e.canon);
  }
  EXPECT_LE(cache.size(), 50u);
}

TEST(TruthTable, ProjectionAndOps) {
  const int n = 9;  // exercises multi-word paths
  const auto x0 = TruthTable::projection(0, n);
  const auto x7 = TruthTable::projection(7, n);
  const auto x8 = TruthTable::projection(8, n);
  const auto f = (x0 & x7) ^ x8;
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    const bool b0 = m & 1, b7 = m & (1 << 7), b8 = m & (1 << 8);
    EXPECT_EQ(f.get_bit(m), (b0 && b7) != b8);
  }
}

TEST(TruthTable, CofactorsLargeVars) {
  const int n = 8;
  const auto x2 = TruthTable::projection(2, n);
  const auto x7 = TruthTable::projection(7, n);
  const auto f = x2 & x7;
  EXPECT_EQ(f.cofactor0(7), TruthTable::constant(false, n));
  EXPECT_EQ(f.cofactor1(7), x2);
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_TRUE(f.depends_on(7));
  EXPECT_FALSE(f.depends_on(0));
}

TEST(TruthTable, SwapVarsAllRegimes) {
  const int n = 8;
  Rng rng(17);
  for (int iter = 0; iter < 50; ++iter) {
    TruthTable f(n);
    for (auto& w : f.words()) w = rng.next();
    const int a = static_cast<int>(rng.next_below(n));
    const int b = static_cast<int>(rng.next_below(n));
    const auto g = f.swap_vars(a, b);
    EXPECT_EQ(g.swap_vars(a, b), f);
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
      std::uint32_t s = m & ~((1u << a) | (1u << b));
      if (m & (1u << a)) s |= (1u << b);
      if (m & (1u << b)) s |= (1u << a);
      ASSERT_EQ(g.get_bit(m), f.get_bit(s)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(TruthTable, FlipVarLarge) {
  const int n = 8;
  const auto x7 = TruthTable::projection(7, n);
  EXPECT_EQ(x7.flip_var(7), ~x7);
  const auto x3 = TruthTable::projection(3, n);
  EXPECT_EQ((x3 & x7).flip_var(7), x3 & ~x7);
}

TEST(TruthTable, ShrinkSupport) {
  const int n = 10;
  const auto f = TruthTable::projection(3, n) ^ TruthTable::projection(8, n);
  std::vector<int> old_idx;
  const auto g = f.shrink_support(old_idx);
  EXPECT_EQ(g.num_vars(), 2);
  ASSERT_EQ(old_idx.size(), 2u);
  EXPECT_EQ(old_idx[0], 3);
  EXPECT_EQ(old_idx[1], 8);
  EXPECT_EQ(g, TruthTable::projection(0, 2) ^ TruthTable::projection(1, 2));
}

TEST(TruthTable, Tt6Interop) {
  const Tt6 f = tt6_var(0) | tt6_var(2);
  const auto t = TruthTable::from_tt6(f, 3);
  EXPECT_EQ(t.to_tt6(), tt6_replicate(f, 3));
  EXPECT_EQ(t.count_ones(), tt6_count_ones(f, 3));
}

}  // namespace
}  // namespace mcs
