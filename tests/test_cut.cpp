/// Tests for cut data structures and priority-cut enumeration, including
/// choice-class merging (Algorithm 3's cut-sharing step).

#include <gtest/gtest.h>

#include "mcs/cut/enumeration.hpp"
#include "mcs/network/network_utils.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

TEST(Cut, TrivialCut) {
  const Cut c = Cut::trivial(42);
  EXPECT_TRUE(c.is_trivial());
  EXPECT_EQ(c.size, 1);
  EXPECT_TRUE(c.contains(42));
  EXPECT_FALSE(c.contains(41));
  EXPECT_EQ(c.function, tt6_var(0));
}

TEST(Cut, MergeLeaves) {
  Cut a = Cut::trivial(1);
  Cut b = Cut::trivial(3);
  Cut ab;
  ASSERT_TRUE(merge_cut_leaves(a, b, 6, ab));
  EXPECT_EQ(ab.size, 2);
  EXPECT_EQ(ab.leaves[0], 1u);
  EXPECT_EQ(ab.leaves[1], 3u);

  // Overflow is rejected.
  Cut big;
  big.size = 6;
  for (int i = 0; i < 6; ++i) {
    big.leaves[i] = static_cast<NodeId>(10 + i);
    big.signature |= Cut::leaf_bit(big.leaves[i]);
  }
  Cut out;
  EXPECT_FALSE(merge_cut_leaves(big, a, 6, out));
  EXPECT_TRUE(merge_cut_leaves(big, Cut::trivial(12), 6, out));
  EXPECT_EQ(out.size, 6);
}

TEST(Cut, Dominance) {
  Cut a;
  a.size = 2;
  a.leaves = {1, 2};
  a.signature = Cut::leaf_bit(1) | Cut::leaf_bit(2);
  Cut b;
  b.size = 3;
  b.leaves = {1, 2, 5};
  b.signature = a.signature | Cut::leaf_bit(5);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.dominates(a));
}

TEST(Cut, ExpandFunction) {
  // f = x0 & x1 over leaves {3, 7}; expand to leaves {3, 5, 7}.
  Cut small;
  small.size = 2;
  small.leaves = {3, 7};
  Cut super;
  super.size = 3;
  super.leaves = {3, 5, 7};
  const Tt6 f = tt6_var(0) & tt6_var(1);
  const Tt6 g = expand_cut_function(f, small, super);
  EXPECT_TRUE(tt6_equal(g, tt6_var(0) & tt6_var(2), 3));
}

class CutEnumerationOnRandomNets : public ::testing::TestWithParam<int> {};

TEST_P(CutEnumerationOnRandomNets, CutFunctionsMatchConeFunctions) {
  const auto net = mcs::testing::random_network(
      {.num_pis = 6, .num_gates = 50, .num_pos = 4,
       .seed = static_cast<std::uint64_t>(GetParam())});
  CutEnumerator enumerator(net, {.cut_size = 4, .cut_limit = 8});
  enumerator.run(topo_order(net));

  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    for (const Cut& c : enumerator.cuts(n)) {
      std::vector<NodeId> leaves(c.leaves.begin(), c.leaves.begin() + c.size);
      const TruthTable expected =
          cone_function(net, Signal(n, false), leaves);
      ASSERT_LE(expected.num_vars(), 6);
      EXPECT_TRUE(tt6_equal(c.function, expected.to_tt6(), c.size))
          << "node " << n << " cut size " << int(c.size);
    }
  }
}

TEST_P(CutEnumerationOnRandomNets, RespectsSizeAndCountLimits) {
  const auto net = mcs::testing::random_network(
      {.num_pis = 8, .num_gates = 80, .num_pos = 4,
       .seed = static_cast<std::uint64_t>(GetParam() + 100)});
  const int k = 5, l = 6;
  CutEnumerator enumerator(net, {.cut_size = k, .cut_limit = l});
  enumerator.run(topo_order(net));
  for (const NodeId n : topo_order(net)) {
    const auto& cuts = enumerator.cuts(n);
    EXPECT_LE(cuts.size(), static_cast<std::size_t>(l) + 1)
        << "limit plus the trivial cut";
    for (const Cut& c : cuts) {
      EXPECT_LE(int(c.size), k);
      // Leaves sorted and unique.
      for (int i = 1; i < c.size; ++i) {
        EXPECT_LT(c.leaves[i - 1], c.leaves[i]);
      }
    }
    if (net.is_gate(n)) {
      EXPECT_TRUE(cuts.back().is_trivial());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutEnumerationOnRandomNets,
                         ::testing::Values(1, 2, 3, 4));

TEST(CutEnumeration, ArenaResetReproducesIdenticalCutSets) {
  // reset() must rewind the arena without changing results: two passes over
  // the same order yield bit-identical cut sets (the mappers rely on this
  // for their re-enumerating recovery passes).
  const auto net = mcs::testing::random_network(
      {.num_pis = 8, .num_gates = 120, .num_pos = 6, .seed = 42});
  const auto order = topo_order(net);
  CutEnumerator enumerator(net, {.cut_size = 5, .cut_limit = 6});
  enumerator.run(order);

  std::vector<std::vector<Cut>> first(net.size());
  for (const NodeId n : order) {
    const auto cuts = enumerator.cuts(n);
    first[n].assign(cuts.begin(), cuts.end());
  }

  enumerator.reset();
  for (const NodeId n : order) {
    EXPECT_TRUE(enumerator.cuts(n).empty()) << "reset must clear all spans";
  }
  enumerator.run(order);

  for (const NodeId n : order) {
    const auto cuts = enumerator.cuts(n);
    ASSERT_EQ(cuts.size(), first[n].size()) << "node " << n;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      EXPECT_TRUE(cuts[i] == first[n][i]) << "node " << n << " cut " << i;
      EXPECT_EQ(cuts[i].function, first[n][i].function);
    }
  }
}

TEST(CutEnumeration, ArenaSpansAreContiguousPerNode) {
  // Each node's cuts must land in one contiguous block (the locality the
  // arena exists for): leaves stay sorted/unique and the span is addressable
  // as an array.
  const auto net = mcs::testing::random_network(
      {.num_pis = 6, .num_gates = 60, .num_pos = 4, .seed = 3});
  CutEnumerator enumerator(net, {.cut_size = 4, .cut_limit = 8});
  enumerator.run(topo_order(net));
  for (const NodeId n : topo_order(net)) {
    const std::span<const Cut> cuts = enumerator.cuts(n);
    ASSERT_FALSE(cuts.empty());
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_EQ(&cuts[i], &cuts[0] + i);
    }
  }
}

TEST(CutEnumeration, ChoiceCutsAreMergedIntoRepresentative) {
  // r = (a & b) & c with member m = a & (b & c): the representative's cut
  // set must contain cuts whose structure comes from the member.
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal ab = net.create_and(a, b);
  const Signal r = net.create_and(ab, c);
  const Signal bc = net.create_and(b, c);
  const Signal m = net.create_and(a, bc);
  net.create_po(r);
  net.add_choice(r.node(), m.node(), false);

  CutEnumerator enumerator(net, {.cut_size = 4, .cut_limit = 10,
                                 .use_choices = true});
  enumerator.run(choice_topo_order(net));

  // Expect a cut {a, bc} on r (structure only available through m).
  bool found = false;
  for (const Cut& cut : enumerator.cuts(r.node())) {
    if (cut.size == 2 && cut.contains(a.node()) && cut.contains(bc.node())) {
      found = true;
      EXPECT_TRUE(tt6_equal(cut.function, tt6_var(0) & tt6_var(1), 2));
    }
  }
  EXPECT_TRUE(found);
}

TEST(CutEnumeration, ChoicePhaseFlipsMergedFunctions) {
  // Representative r = XOR3(a,b,c).  Member node m computes the complement
  // XNOR3 as a product of sums: ((a ~^ b) | c) & ((a ^ b) | !c), a genuine
  // AND-rooted node with function == !r, i.e. a phase-1 choice.
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal r = net.create_xor3(a, b, c);
  const Signal x_ab = net.create_xor(a, b);
  const Signal m = net.create_and(net.create_or(!x_ab, c),
                                  net.create_or(x_ab, !c));
  net.create_po(r);
  ASSERT_FALSE(r.complemented());
  ASSERT_FALSE(m.complemented());
  ASSERT_NE(r.node(), m.node());
  net.add_choice(r.node(), m.node(), /*phase=*/true);

  CutEnumerator enumerator(net, {.cut_size = 4, .cut_limit = 16,
                                 .use_choices = true});
  enumerator.run(choice_topo_order(net));

  // Every 3-PI-leaf cut on r must have the XOR3 function, including cuts
  // contributed by the complemented member.
  int checked = 0;
  const Tt6 xor3 = tt6_var(0) ^ tt6_var(1) ^ tt6_var(2);
  for (const Cut& cut : enumerator.cuts(r.node())) {
    if (cut.size == 3 && cut.contains(a.node()) && cut.contains(b.node()) &&
        cut.contains(c.node())) {
      EXPECT_TRUE(tt6_equal(cut.function, xor3, 3))
          << "merged choice cut function must be phase-corrected";
      ++checked;
    }
  }
  EXPECT_GE(checked, 1);
}

}  // namespace
}  // namespace mcs
