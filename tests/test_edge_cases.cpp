/// Edge-case and failure-injection tests across modules: degenerate
/// networks, malformed inputs, budget exhaustion and boundary sizes.

#include <gtest/gtest.h>

#include <sstream>

#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/circuits/wordlib.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/io/blif_read.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {
namespace {

TEST(EdgeCases, EmptyNetworkFlows) {
  // No gates at all: constants and wires only.
  Network net;
  const Signal a = net.create_pi();
  net.create_po(a);
  net.create_po(net.constant(true));

  EXPECT_EQ(build_mch(net, {}).num_choices(), 0u);
  // A constant PO becomes one 0-input LUT (depth <= 1).
  EXPECT_LE(lut_map(net).depth(), 1u);
  const auto cells = asic_map(net, TechLibrary::asap7_mini());
  EXPECT_EQ(check_equivalence(net, cleanup(net)), CecResult::kEquivalent);
  EXPECT_EQ(balance(net).num_gates(), 0u);
  EXPECT_EQ(compress2rs_like(net, GateBasis::aig()).num_gates(), 0u);
  (void)cells;
}

TEST(EdgeCases, NetworkWithNoPos) {
  Network net;
  net.create_pi();
  net.create_pi();
  EXPECT_EQ(cleanup(net).num_gates(), 0u);
  EXPECT_EQ(lut_map(net).size(), 0u);
  EXPECT_EQ(topo_order(net).size(), 0u);
}

TEST(EdgeCases, SamePoDrivenTwiceWithBothPhases) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal g = net.create_and(a, b);
  net.create_po(g);
  net.create_po(!g);
  net.create_po(g);
  const auto lnet = lut_map(net);
  const Network back = lut_network_to_network(lnet);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
  const auto cells = asic_map(net, TechLibrary::asap7_mini());
  EXPECT_EQ(cells.po_refs.size(), 3u);
}

TEST(EdgeCases, MchOnSingleGateNetwork) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.create_po(net.create_and(a, b));
  MchParams params;
  params.verify_candidates = true;
  const Network mch = build_mch(net, params);
  EXPECT_EQ(check_equivalence(net, mch), CecResult::kEquivalent);
}

TEST(EdgeCases, CecWithTinyConflictLimitReturnsUnknownNotWrong) {
  // A hard miter under a 1-conflict budget must never claim a result.
  Network a = expand_to_aig(circuits::multiplier(6));
  Network b = balance(a);
  CecOptions opts;
  opts.conflict_limit = 1;
  const auto r = check_equivalence(a, b, opts);
  EXPECT_NE(r, CecResult::kNotEquivalent);
}

TEST(EdgeCases, AigerRejectsGarbage) {
  {
    std::stringstream ss("not an aiger file");
    EXPECT_THROW(read_aiger(ss), std::runtime_error);
  }
  {
    std::stringstream ss("aag 1 1 1 1 0\n2\n");  // latches
    EXPECT_THROW(read_aiger(ss), std::runtime_error);
  }
}

TEST(EdgeCases, GenlibRejectsMalformedInput) {
  EXPECT_THROW(TechLibrary::parse_genlib("GATE broken"), std::runtime_error);
  EXPECT_THROW(
      TechLibrary::parse_genlib("GATE g 1.0 O=a*(b;\n"),
      std::runtime_error);
  EXPECT_THROW(
      TechLibrary::parse_genlib("GATE g 1.0 O=a*b*c*d*e;\n"),
      std::runtime_error)
      << "more than 4 pins";
}

TEST(EdgeCases, WordLibZeroAndBoundaryValues) {
  Network net;
  const auto a = circuits::make_pi_word(net, 4, "a");
  const auto b = circuits::make_pi_word(net, 4, "b");
  // a - a == 0 with no borrow.
  Signal no_borrow = net.constant(false);
  const auto diff = circuits::sub(net, a, a, &no_borrow);
  for (const Signal s : diff) EXPECT_EQ(s, net.constant(false));
  EXPECT_EQ(no_borrow, net.constant(true));
  // x < x is false.
  EXPECT_EQ(circuits::less_than(net, b, b), net.constant(false));
  // Shift by zero-width amount is the identity.
  const auto same = circuits::shift_left(net, a, {});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(same[i], a[i]);
}

TEST(EdgeCases, DividerByZeroYieldsAllOnesQuotient) {
  const auto net = circuits::divider(4);
  // Evaluate at b = 0, a = 5.
  std::vector<std::uint64_t> pi_vals(net.num_pis(), 0);
  // PIs: a[0..3], b[0..3]; set a = 5 on every simulated pattern.
  RandomSimulation dummy(net, 1, 1);
  (void)dummy;
  std::vector<std::uint8_t> value(net.size(), 0);
  auto eval_bit = [&](std::uint64_t aval, std::uint64_t bval, int po) {
    for (NodeId n = 0; n < net.size(); ++n) {
      const Node& nd = net.node(n);
      if (net.is_pi(n)) {
        // PI order: a then b.
        std::size_t idx = 0;
        for (; idx < net.num_pis(); ++idx) {
          if (net.pi_at(idx) == n) break;
        }
        value[n] = idx < 4 ? ((aval >> idx) & 1) : ((bval >> (idx - 4)) & 1);
        continue;
      }
      if (!net.is_gate(n)) continue;
      bool in[3] = {};
      for (int i = 0; i < nd.num_fanins; ++i) {
        in[i] = value[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
      }
      switch (nd.type) {
        case GateType::kAnd2: value[n] = in[0] && in[1]; break;
        case GateType::kXor2: value[n] = in[0] != in[1]; break;
        case GateType::kMaj3: value[n] = (in[0] + in[1] + in[2]) >= 2; break;
        case GateType::kXor3: value[n] = in[0] ^ in[1] ^ in[2]; break;
        default: break;
      }
    }
    const Signal s = net.po_at(po);
    return bool(value[s.node()] ^ s.complemented());
  };
  // Quotient bits (POs 0..3) must all be 1 when dividing by zero.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(eval_bit(5, 0, i)) << "quotient bit " << i;
  }
}

TEST(EdgeCases, DetectXorsIsIdempotent) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.create_po(net.create_or(net.create_and(a, !b), net.create_and(!a, b)));
  const Network once = detect_xors(net);
  const Network twice = detect_xors(once);
  EXPECT_EQ(once.num_gates(), twice.num_gates());
  EXPECT_EQ(check_equivalence(net, twice), CecResult::kEquivalent);
}

TEST(EdgeCases, LutMapperHandlesWideTrivialFunctions) {
  // A 6-input AND of complemented inputs, mapped with k = 4: needs a
  // multi-level cover with complement handling at the leaves.
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.create_pi());
  Signal acc = net.constant(true);
  for (const Signal s : pis) acc = net.create_and(acc, !s);
  net.create_po(!acc);
  const auto lnet = lut_map(net, {.lut_size = 4, .use_choices = false});
  const Network back = lut_network_to_network(lnet);
  EXPECT_EQ(check_equivalence(net, back), CecResult::kEquivalent);
}

}  // namespace
}  // namespace mcs
