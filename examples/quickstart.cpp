/// \file quickstart.cpp
/// \brief Five-minute tour of the library: build a network, create a mixed
/// choice network (MCH), and map it to LUTs and standard cells.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "mcs/choice/mch.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cec.hpp"

using namespace mcs;

int main() {
  // 1. Build a small mixed network: a 4-bit odd-parity checker feeding a
  //    comparator.  The Network type hosts AND2/XOR2/MAJ3/XOR3 gates behind
  //    complemented edges with automatic structural hashing.
  Network net;
  Signal a = net.create_pi("a");
  Signal b = net.create_pi("b");
  Signal c = net.create_pi("c");
  Signal d = net.create_pi("d");
  Signal parity = net.create_xor(net.create_xor(a, b), net.create_xor(c, d));
  Signal vote = net.create_maj(a, b, net.create_and(c, d));
  net.create_po(net.create_and(parity, !vote), "f");

  std::printf("network: %zu gates, depth %u (AND2=%zu XOR2=%zu MAJ3=%zu)\n",
              net.num_gates(), net.depth(),
              net.num_gates_of(GateType::kAnd2),
              net.num_gates_of(GateType::kXor2),
              net.num_gates_of(GateType::kMaj3));

  // 2. Build the mixed choice network (the paper's Algorithm 1): original
  //    nodes stay as representatives, heterogeneous candidates attach as
  //    choice nodes.
  MchParams params;
  params.candidate_basis = GateBasis::xmg();  // candidates may use MAJ/XOR
  params.critical_ratio = 0.8;                // r: critical-path selection
  MchStats stats;
  Network mch = build_mch(net, params, &stats);
  std::printf("MCH: %zu candidate structures attached (%zu tried)\n",
              stats.num_choices_added, stats.num_candidates_tried);

  // 3. Map to 6-LUTs -- the mapper folds every choice node's cuts into its
  //    representative and picks whatever structure costs least.
  LutMapStats lut_stats;
  const LutNetwork luts = lut_map(mch, {}, &lut_stats);
  std::printf("6-LUT mapping: %zu LUTs, depth %u\n", luts.size(),
              luts.depth());

  // 4. Map to standard cells (mini-ASAP7) with the delay objective.
  const TechLibrary lib = TechLibrary::asap7_mini();
  AsicMapStats asic_stats;
  const CellNetlist cells = asic_map(mch, lib, {}, &asic_stats);
  std::printf("ASIC mapping: %zu cells, %.3f um^2, %.2f ps\n", cells.size(),
              cells.area, cells.delay);
  for (const auto& [name, count] : cells.cell_histogram()) {
    std::printf("  %-10s x%d\n", name.c_str(), count);
  }

  // 5. Everything is verifiable: the mapped LUT network rebuilt as a logic
  //    network must be combinationally equivalent to the original.
  const CecResult cec = check_equivalence(net, lut_network_to_network(luts));
  std::printf("formal equivalence check: %s\n",
              cec == CecResult::kEquivalent ? "equivalent" : "FAILED");
  return cec == CecResult::kEquivalent ? 0 : 1;
}
