/// \file asic_flow.cpp
/// \brief A realistic ASIC synthesis flow on a generated arithmetic design:
/// optimize -> build MCH -> map -> emit structural Verilog.
///
/// This is the end-to-end pipeline behind the paper's Table I, shown on a
/// single circuit with all intermediate metrics, plus Verilog/BLIF output.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "mcs/choice/analysis.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/sta.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 12;
  std::printf("=== ASIC flow on a %d-bit multiplier ===\n\n", bits);

  // RTL-equivalent input: the generated array multiplier, as an AIG.
  const Network rtl = expand_to_aig(circuits::multiplier(bits));
  std::printf("input AIG:        %6zu gates, depth %u\n", rtl.num_gates(),
              rtl.depth());

  // Technology-independent optimization (the compress2rs-like script).
  ScriptStats script_stats;
  const Network opt = compress2rs_like(rtl, GateBasis::aig(), 3,
                                       &script_stats);
  std::printf("optimized AIG:    %6zu gates, depth %u (%d rounds)\n",
              opt.num_gates(), opt.depth(), script_stats.iterations);

  const TechLibrary lib = TechLibrary::asap7_mini();

  // Baseline mapping, no choices.
  AsicMapParams delay_map;
  delay_map.objective = AsicMapParams::Objective::kDelay;
  delay_map.use_choices = false;
  const CellNetlist baseline = asic_map(opt, lib, delay_map);
  std::printf("baseline map:     %6zu cells, %8.3f um^2, %8.2f ps\n",
              baseline.size(), baseline.area, baseline.delay);

  // MCH-based mapping: XAG candidates target the XOR-rich partial-product
  // reduction; the mapper picks XOR2/XOR3/MAJ cells where they pay off.
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.7;
  MchStats mch_stats;
  const Network mch = build_mch(detect_xors(opt), mch_params, &mch_stats);
  std::printf("MCH:              %6zu choices on %zu candidates tried\n",
              mch_stats.num_choices_added, mch_stats.num_candidates_tried);
  report_choices(mch, std::cout);

  AsicMapParams choice_map = delay_map;
  choice_map.use_choices = true;
  const CellNetlist mapped = asic_map(mch, lib, choice_map);
  std::printf("MCH map:          %6zu cells, %8.3f um^2, %8.2f ps\n",
              mapped.size(), mapped.area, mapped.delay);
  std::printf("                  area %+.2f%%, delay %+.2f%% vs baseline\n",
              100.0 * (baseline.area - mapped.area) / baseline.area,
              100.0 * (baseline.delay - mapped.delay) / baseline.delay);
  std::printf("\n");
  report_timing(mapped, std::cout);

  // Emit artifacts.
  {
    std::ofstream os("multiplier_mapped.v");
    write_verilog(mapped, os, "multiplier");
  }
  {
    std::ofstream os("multiplier_opt.blif");
    write_blif(opt, os, "multiplier");
  }
  std::printf("\nwrote multiplier_mapped.v (gate-level) and "
              "multiplier_opt.blif (optimized logic)\n");
  return 0;
}
