/// \file mcs_shell.cpp
/// \brief An ABC-style shell over the library, driven entirely by the
/// mcs::flow pass registry: every registered pass is a command, `help` is
/// generated from the registered schemas, and `flow "<spec>"` runs a whole
/// pipeline from a flow-spec string.
///
///   ./build/examples/mcs_shell                 # interactive
///   echo "gen adder 16; mch; map_lut; ps" | ./build/examples/mcs_shell
///   ./build/examples/mcs_shell script.mcs      # batch file
///
/// Command arguments may be positional (`gen adder 16`, bound in schema
/// order) or key=value (`gen name=adder bits=16`); values are validated --
/// junk numbers are errors, not silently zero.  In batch mode (script file
/// or piped stdin) the first unknown command or failed pass stops the run
/// and exits nonzero, so CI scripts cannot silently pass.
///
/// The `threads <n>` command selects the worker count for the parallel
/// partition-based commands (`popt`, `pmch`, `pmap_lut`, `par`); their
/// results are bit-identical for any thread count.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mcs/flow/flow.hpp"

using namespace mcs;

namespace {

/// Splits \p line on \p sep, keeping double-quoted sections intact
/// (so `flow "a; b"` is one command even though the spec contains ';').
std::vector<std::string> split_outside_quotes(const std::string& line,
                                              char sep) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (const char c : line) {
    if (c == '"') {
      quoted = !quoted;
      cur += c;
    } else if (c == sep && !quoted) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// Whitespace tokenization with double quotes (stripped from the token).
std::vector<std::string> tokenize(const std::string& command) {
  std::vector<std::string> tokens;
  std::string cur;
  bool quoted = false;
  bool have = false;
  for (const char c : command) {
    if (c == '"') {
      quoted = !quoted;
      have = true;
    } else if ((c == ' ' || c == '\t') && !quoted) {
      if (have) tokens.push_back(cur);
      cur.clear();
      have = false;
    } else {
      cur += c;
      have = true;
    }
  }
  if (have) tokens.push_back(cur);
  return tokens;
}

std::string join(const std::vector<std::string>& tokens, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    if (i > from) out += ' ';
    out += tokens[i];
  }
  return out;
}

void print_help() {
  std::fputs(flow::PassRegistry::instance().help().c_str(), stdout);
  std::fputs(
      " shell built-ins:\n"
      "  flow \"<spec>\"        run a whole pipeline, e.g.\n"
      "                        flow \"gen:adder,bits=16; compress2rs; "
      "mch; map_lut:k=6; cec\"\n"
      "  help                  this text\n"
      "  quit | exit\n"
      "commands separate with newlines or ';'; args are positional or "
      "key=value\n",
      stdout);
}

/// Executes one tokenized command.  Returns false on error (unknown
/// command, bad arguments, failed pass).
bool execute(flow::FlowContext& ctx, const std::vector<std::string>& tokens,
             bool* quit) {
  const std::string& cmd = tokens[0];
  if (cmd == "quit" || cmd == "exit") {
    *quit = true;
    return true;
  }
  if (cmd == "help") {
    print_help();
    return true;
  }
  if (cmd == "flow") {
    if (tokens.size() < 2) {
      std::printf("flow: missing spec (flow \"a; b; c\")\n");
      return false;
    }
    try {
      const flow::Flow f = flow::Flow::parse(join(tokens, 1));
      const flow::FlowReport report = f.run(ctx);
      std::printf("flow: %s (%zu stages, %.2fs)\n",
                  report.ok ? "ok" : "FAILED", report.stages.size(),
                  report.total_seconds);
      return report.ok;
    } catch (const flow::FlowError& e) {
      std::printf("flow: %s\n", e.what());
      return false;
    }
  }
  const flow::PassInfo* pass = flow::PassRegistry::instance().find(cmd);
  if (!pass) {
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return false;
  }
  try {
    const flow::PassArgs args = flow::PassArgs::bind(
        *pass, {tokens.begin() + 1, tokens.end()});
    // The txn wrapper honours a `ckpt` policy armed earlier in the
    // session and is exactly run_stage when the policy is off.
    return flow::run_stage_txn(ctx, *pass, args).ok;
  } catch (const flow::FlowError& e) {
    std::printf("%s\n", e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // MCS_TRACE=<file>: record spans for the whole session, dump at exit.
  obs::init_from_env();
  flow::FlowContext ctx;
  ctx.verbose = true;

  std::istream* in = &std::cin;
  std::ifstream file;
  bool batch = !isatty(fileno(stdin));
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
    batch = true;
  }
  if (!batch) std::printf("mcs shell -- type 'help' for commands\n");

  bool quit = false;
  std::string line;
  while (!quit && std::getline(*in, line)) {
    // Whole-line comments are skipped before ';' splitting, so a '#'
    // line may mention ';' without its tail running as a command.
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    for (const std::string& one : split_outside_quotes(line, ';')) {
      if (quit) break;
      const std::vector<std::string> tokens = tokenize(one);
      if (tokens.empty() || tokens[0][0] == '#') continue;
      if (!execute(ctx, tokens, &quit) && batch) {
        std::fprintf(stderr, "mcs_shell: stopping on failed command '%s'\n",
                     tokens[0].c_str());
        return 1;
      }
    }
  }
  return 0;
}
