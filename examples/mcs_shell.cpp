/// \file mcs_shell.cpp
/// \brief An ABC-style interactive shell over the library: load/generate
/// networks, run optimization passes, build choice networks, map, verify
/// and write results -- each as a one-word command.
///
///   ./build/examples/mcs_shell                 # interactive
///   echo "gen adder 16; mch; map_lut; ps" | ./build/examples/mcs_shell
///   ./build/examples/mcs_shell script.mcs      # batch file
///
/// The `threads <n>` command selects the worker count for the parallel
/// partition-based commands (`popt`, `pmch`, `pmap_lut`; see mcs/par/);
/// their results are bit-identical for any thread count.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"

using namespace mcs;

namespace {

struct ShellState {
  Network net;                      ///< current working network
  std::optional<Network> original;  ///< snapshot for `cec`
  std::optional<LutNetwork> luts;
  std::optional<CellNetlist> cells;
  TechLibrary lib = TechLibrary::asap7_mini();
  ParParams par;  ///< thread count + partition size for the p* commands
  bool quit = false;
};

GateBasis parse_basis(const std::string& s, GateBasis fallback) {
  if (s == "aig") return GateBasis::aig();
  if (s == "xag") return GateBasis::xag();
  if (s == "mig") return GateBasis::mig();
  if (s == "xmg") return GateBasis::xmg();
  return fallback;
}

void cmd_help() {
  std::printf(R"(commands (separate with newlines or ';'):
  gen <name> [bits]     generate a benchmark circuit (adder, bar, div, hyp,
                        log2, max, multiplier, sin, sqrt, square, arbiter,
                        cavlc, ctrl, dec, i2c, int2float, mem_ctrl,
                        priority, router, voter)
  read_aiger <file>     load an AIGER file
  write_aiger <file>    write the current network (AND-expanded) as AIGER
  write_blif <file>     write the current network as BLIF
  write_verilog <file>  write the current network (or mapped netlist) as Verilog
  ps                    print statistics
  strash                re-hash / remove dangling nodes
  to <basis>            convert to aig / xag / mig / xmg
  balance | rewrite | refactor | resub | sweep
                        one optimization pass
  compress2rs [rounds]  the full optimization script
  dch                   traditional structural choices (snapshots + SAT)
  mch [basis] [r]       mixed structural choices (default xmg, r = 0.9)
  map_lut [k]           choice-aware K-LUT mapping (default k = 6)
  map_asic [delay|area] choice-aware standard-cell mapping (mini-ASAP7)
  graph_map [basis]     graph mapping into a representation
  threads [n]           set worker threads for the p* commands (0 = auto);
                        with no argument, print the current setting
  partsize <gates>      set the partition size target (default 4000)
  popt [rounds]         parallel partitioned compress2rs
  pmch [basis] [r]      parallel partitioned mixed structural choices
  pmap_lut [k]          parallel partitioned choice-aware K-LUT mapping
  cec                   verify current network against the first loaded one
  quit
)");
}

void cmd_ps(const ShellState& st) {
  const auto s = network_stats(st.net);
  std::printf("net: pi=%zu po=%zu gates=%zu (and=%zu xor2=%zu maj=%zu "
              "xor3=%zu) depth=%u choices=%zu\n",
              st.net.num_pis(), st.net.num_pos(), s.num_gates, s.num_and2,
              s.num_xor2, s.num_maj3, s.num_xor3, s.depth, s.num_choices);
  if (st.luts) {
    std::printf("lut: %zu LUTs, depth %u\n", st.luts->size(),
                st.luts->depth());
  }
  if (st.cells) {
    std::printf("asic: %zu cells, %.3f um^2, %.2f ps\n", st.cells->size(),
                st.cells->area, st.cells->delay);
  }
}

void execute(ShellState& st, const std::vector<std::string>& tok) {
  const std::string& cmd = tok[0];
  auto arg = [&](std::size_t i, const std::string& dflt = "") {
    return tok.size() > i ? tok[i] : dflt;
  };

  if (cmd == "help") {
    cmd_help();
  } else if (cmd == "quit" || cmd == "exit") {
    st.quit = true;
  } else if (cmd == "gen") {
    const std::string name = arg(1, "adder");
    const int bits = tok.size() > 2 ? std::atoi(tok[2].c_str()) : 0;
    for (auto& bc : circuits::epfl_suite(1.0)) {
      if (bc.name != name) continue;
      st.net = bits > 0 && name == "adder"        ? circuits::adder(bits)
               : bits > 0 && name == "multiplier" ? circuits::multiplier(bits)
               : bits > 0 && name == "bar" ? circuits::barrel_shifter(bits)
               : bits > 0 && name == "voter" ? circuits::voter(bits)
                                             : std::move(bc.net);
      st.original = st.net;
      st.luts.reset();
      st.cells.reset();
      cmd_ps(st);
      return;
    }
    std::printf("unknown circuit '%s'\n", name.c_str());
  } else if (cmd == "read_aiger") {
    try {
      st.net = read_aiger_file(arg(1));
      st.original = st.net;
      cmd_ps(st);
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  } else if (cmd == "write_aiger") {
    try {
      write_aiger_file(expand_to_aig(st.net), arg(1));
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  } else if (cmd == "write_blif") {
    std::ofstream os(arg(1));
    if (st.luts) {
      write_blif(*st.luts, os);
    } else {
      write_blif(st.net, os);
    }
  } else if (cmd == "write_verilog") {
    std::ofstream os(arg(1));
    if (st.cells) {
      write_verilog(*st.cells, os);
    } else {
      write_verilog(st.net, os);
    }
  } else if (cmd == "ps") {
    cmd_ps(st);
  } else if (cmd == "strash") {
    st.net = cleanup(st.net);
    cmd_ps(st);
  } else if (cmd == "to") {
    st.net = convert_basis(st.net, parse_basis(arg(1, "aig"),
                                               GateBasis::aig()));
    cmd_ps(st);
  } else if (cmd == "balance") {
    st.net = balance(st.net);
    cmd_ps(st);
  } else if (cmd == "rewrite") {
    st.net = rewrite(st.net);
    cmd_ps(st);
  } else if (cmd == "refactor") {
    st.net = refactor(st.net);
    cmd_ps(st);
  } else if (cmd == "resub") {
    st.net = resub(st.net);
    cmd_ps(st);
  } else if (cmd == "sweep") {
    st.net = sweep(st.net);
    cmd_ps(st);
  } else if (cmd == "compress2rs") {
    const int rounds = tok.size() > 1 ? std::atoi(tok[1].c_str()) : 3;
    st.net = compress2rs_like(st.net, GateBasis::xmg(), rounds);
    cmd_ps(st);
  } else if (cmd == "dch") {
    st.net = build_dch({st.net, balance(st.net), rewrite(st.net)});
    cmd_ps(st);
  } else if (cmd == "mch") {
    MchParams params;
    params.candidate_basis = parse_basis(arg(1, "xmg"), GateBasis::xmg());
    if (tok.size() > 2) params.critical_ratio = std::atof(tok[2].c_str());
    MchStats stats;
    st.net = build_mch(st.net, params, &stats);
    std::printf("mch: %zu choices added (%zu candidates tried)\n",
                stats.num_choices_added, stats.num_candidates_tried);
    cmd_ps(st);
  } else if (cmd == "map_lut") {
    LutMapParams params;
    if (tok.size() > 1) params.lut_size = std::atoi(tok[1].c_str());
    st.luts = lut_map(st.net, params);
    std::printf("mapped: %zu LUTs, depth %u\n", st.luts->size(),
                st.luts->depth());
  } else if (cmd == "map_asic") {
    AsicMapParams params;
    if (arg(1) == "area") params.objective = AsicMapParams::Objective::kArea;
    st.cells = asic_map(st.net, st.lib, params);
    std::printf("mapped: %zu cells, %.3f um^2, %.2f ps\n", st.cells->size(),
                st.cells->area, st.cells->delay);
    for (const auto& [name, count] : st.cells->cell_histogram()) {
      std::printf("  %-10s x%d\n", name.c_str(), count);
    }
  } else if (cmd == "graph_map") {
    GraphMapParams params;
    params.target = parse_basis(arg(1, "xmg"), GateBasis::xmg());
    st.net = graph_map(st.net, params);
    cmd_ps(st);
  } else if (cmd == "threads") {
    if (tok.size() > 1) st.par.num_threads = std::atoi(tok[1].c_str());
    std::printf("threads: %zu (requested %d, hardware %u)\n",
                ThreadPool::resolve_threads(st.par.num_threads),
                st.par.num_threads, std::thread::hardware_concurrency());
  } else if (cmd == "partsize") {
    if (tok.size() > 1) {
      const long v = std::atol(tok[1].c_str());
      if (v > 0) st.par.partition.max_gates = static_cast<std::size_t>(v);
    }
    std::printf("partsize: %zu gates\n", st.par.partition.max_gates);
  } else if (cmd == "popt") {
    const int rounds = tok.size() > 1 ? std::atoi(tok[1].c_str()) : 3;
    ParStats ps;
    st.net = par_optimize(st.net, GateBasis::xmg(), rounds, st.par, &ps);
    std::printf("popt: %zu partitions on %zu threads "
                "(%.2fs work, %.2fs partition+stitch)\n",
                ps.num_partitions, ps.num_threads, ps.work_seconds,
                ps.partition_seconds + ps.reassemble_seconds);
    cmd_ps(st);
  } else if (cmd == "pmch") {
    MchParams params;
    params.candidate_basis = parse_basis(arg(1, "xmg"), GateBasis::xmg());
    if (tok.size() > 2) params.critical_ratio = std::atof(tok[2].c_str());
    ParStats ps;
    MchStats stats;
    st.net = par_mch(st.net, params, st.par, &ps, &stats);
    std::printf("pmch: %zu choices added (%zu candidates tried) across "
                "%zu partitions on %zu threads\n",
                stats.num_choices_added, stats.num_candidates_tried,
                ps.num_partitions, ps.num_threads);
    cmd_ps(st);
  } else if (cmd == "pmap_lut") {
    LutMapParams params;
    if (tok.size() > 1) params.lut_size = std::atoi(tok[1].c_str());
    ParStats ps;
    st.luts = par_map_lut(st.net, params, st.par, &ps);
    std::printf("mapped: %zu LUTs, depth %u (%zu partitions on %zu "
                "threads)\n",
                st.luts->size(), st.luts->depth(), ps.num_partitions,
                ps.num_threads);
  } else if (cmd == "cec") {
    if (!st.original) {
      std::printf("no reference network loaded\n");
      return;
    }
    const auto r = check_equivalence(*st.original, st.net);
    std::printf("cec: %s\n", r == CecResult::kEquivalent    ? "equivalent"
                             : r == CecResult::kNotEquivalent ? "NOT equivalent"
                                                              : "unknown");
  } else {
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellState st;
  std::istream* in = &std::cin;
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  } else {
    std::printf("mcs shell -- type 'help' for commands\n");
  }

  std::string line;
  while (!st.quit && std::getline(*in, line)) {
    // Allow ';'-separated command sequences.
    std::stringstream commands(line);
    std::string one;
    while (!st.quit && std::getline(commands, one, ';')) {
      std::stringstream ts(one);
      std::vector<std::string> tok;
      std::string t;
      while (ts >> t) tok.push_back(t);
      if (tok.empty() || tok[0][0] == '#') continue;
      execute(st, tok);
    }
  }
  return 0;
}
