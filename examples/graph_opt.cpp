/// \file graph_opt.cpp
/// \brief Mapping-based logic optimization with MCH (paper, Sec. III-C):
/// iterate graph mapping on an XMG until it hits a local optimum, then let
/// the MCH-based graph mapper push past it.

#include <cstdio>

#include "mcs/circuits/circuits.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cec.hpp"

using namespace mcs;

int main() {
  std::printf("=== MCH-based graph-mapping optimization ===\n\n");
  const Network original = cleanup(circuits::cavlc_like());
  std::printf("input: %zu gates, depth %u\n", original.num_gates(),
              original.depth());

  // Convert to XMG and iterate plain graph mapping to its local optimum.
  GraphMapParams gm;
  gm.target = GateBasis::xmg();
  gm.objective = GraphMapParams::Objective::kSize;
  int iters = 0;
  const Network baseline =
      iterate_graph_map(graph_map(original, gm), gm, 16, &iters);
  std::printf("plain graph map: %zu gates, depth %u after %d iterations "
              "(local optimum)\n",
              baseline.num_gates(), baseline.depth(), iters);

  // MCH-based continuation: mixed MIG/XMG choice networks per round.
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::mig();
  mch_params.critical_ratio = 0.7;
  mch_params.mffc_max_pi = 10;
  const Network escaped =
      iterate_mch_graph_map(baseline, gm, mch_params, 16, &iters);
  std::printf("MCH graph map:   %zu gates, depth %u after %d more rounds\n",
              escaped.num_gates(), escaped.depth(), iters);
  std::printf("improvement:     node %.2f%%, level %.2f%%\n",
              100.0 * (1.0 - double(escaped.num_gates()) /
                                 double(baseline.num_gates())),
              100.0 * (1.0 - double(escaped.depth()) /
                                 double(baseline.depth())));

  const CecResult cec = check_equivalence(original, escaped);
  std::printf("formal verification: %s\n",
              cec == CecResult::kEquivalent ? "equivalent" : "FAILED");
  return cec == CecResult::kEquivalent ? 0 : 1;
}
