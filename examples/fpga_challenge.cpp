/// \file fpga_challenge.cpp
/// \brief The EPFL Best-Results-Challenge workflow (paper, Table II) on one
/// circuit: take an already-good 6-LUT result, strash it back to an AIG,
/// and try to beat it with MCH-based area-oriented LUT mapping.

#include <cstdio>
#include <fstream>

#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"

using namespace mcs;

int main(int argc, char** argv) {
  const int inputs = argc > 1 ? std::atoi(argv[1]) : 31;
  std::printf("=== FPGA best-result challenge on a %d-input voter ===\n\n",
              inputs);

  const Network original = expand_to_aig(circuits::voter(inputs));
  std::printf("input AIG: %zu gates, depth %u\n", original.num_gates(),
              original.depth());

  LutMapParams area6;
  area6.lut_size = 6;
  area6.objective = LutMapParams::Objective::kArea;

  // The standing "record": optimize hard, then area-map.
  const Network opt = compress2rs_like(original, GateBasis::aig(), 3);
  const LutNetwork record = lut_map(opt, area6);
  std::printf("standing record: %zu LUTs, depth %u\n", record.size(),
              record.depth());

  // Challenge workflow: strash the record back to an AIG (this loses the
  // LUT boundaries and introduces redundant structure), then attack it
  // with the MCH mapper.
  const Network strashed = expand_to_aig(lut_network_to_network(record));
  std::printf("strashed AIG: %zu gates\n", strashed.num_gates());

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.95;
  const Network mch = build_mch(strashed, mch_params);
  const LutNetwork challenger = lut_map(mch, area6);
  std::printf("MCH challenger: %zu LUTs, depth %u\n", challenger.size(),
              challenger.depth());

  if (challenger.size() < record.size()) {
    std::printf("-> new record! %zu fewer LUT(s)\n",
                record.size() - challenger.size());
  } else if (challenger.size() == record.size()) {
    std::printf("-> tied the record (depth %u vs %u)\n", challenger.depth(),
                record.depth());
  } else {
    std::printf("-> no record this time (%zu vs %zu)\n", challenger.size(),
                record.size());
  }

  // Challenge submissions must be formally verified.
  const CecResult cec =
      check_equivalence(original, lut_network_to_network(challenger));
  std::printf("formal verification: %s\n",
              cec == CecResult::kEquivalent ? "equivalent" : "FAILED");

  std::ofstream os("voter_challenger.blif");
  write_blif(challenger, os, "voter");
  std::printf("wrote voter_challenger.blif\n");
  return cec == CecResult::kEquivalent ? 0 : 1;
}
