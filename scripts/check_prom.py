#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document (what the mcs job
server's `stats` verb embeds as its "prometheus" field) and optionally
assert exact sample values.

usage: check_prom.py FILE [NAME=VALUE ...]

Checks: every line is a `# TYPE name counter|gauge|histogram` comment or a
`name[{labels}] value` sample; every sample's (base) name was typed first;
histogram `_bucket` series are cumulative and end at `_count` via +Inf.
"""
import re
import sys

SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+)$")
TYPE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")


def fail(what):
    sys.exit(f"check_prom: FAIL: {what}")


types, samples, buckets = {}, {}, {}
for ln, line in enumerate(open(sys.argv[1]), 1):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("#"):
        m = TYPE.match(line)
        m or fail(f"line {ln}: malformed comment {line!r}")
        types[m.group(1)] = m.group(2)
        continue
    m = SAMPLE.match(line)
    m or fail(f"line {ln}: malformed sample {line!r}")
    name, _, value = m.groups()
    base = re.sub(r"_(bucket|sum|count)$", "", name)
    (name in types or types.get(base) == "histogram") or fail(
        f"line {ln}: {name} was never declared with # TYPE")
    samples[name] = float(value)
    if name.endswith("_bucket") and types.get(base) == "histogram":
        buckets.setdefault(base, []).append(float(value))

for base, kind in types.items():
    if kind != "histogram":
        continue
    cum = buckets.get(base, [])
    cum == sorted(cum) or fail(f"{base}: bucket series is not cumulative")
    (cum and cum[-1] == samples.get(base + "_count")) or fail(
        f"{base}: +Inf bucket != _count")
    base + "_sum" in samples or fail(f"{base}: missing _sum")

for expect in sys.argv[2:]:
    name, want = expect.split("=", 1)
    samples.get(name) == float(want) or fail(
        f"{name} is {samples.get(name)}, expected {want}")

print(f"check_prom: OK -- {len(samples)} samples, {len(types)} metrics" +
      (f", {len(sys.argv) - 2} values asserted" if len(sys.argv) > 2 else ""))
