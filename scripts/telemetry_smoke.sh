#!/usr/bin/env bash
# Telemetry smoke for the obs v2 serving surface: a TCP-mode mcs_server
# with a fast sampler runs a small batch while a second connection scrapes
# the admin verbs mid-flight -- `stats`/`health`/`jobs` must answer while
# jobs are running, the embedded Prometheus exposition must validate
# (scripts/check_prom.py), and mcs_top must render a frame.  After the
# batch drains, a final scrape asserts the server's completed counter
# equals the session's own done-line accounting.
#
# Usage: scripts/telemetry_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

build_dir=${1:-build}
server=$build_dir/tools/mcs_server
submit=$build_dir/tools/mcs_submit
top=$build_dir/tools/mcs_top
[ -x "$server" ] && [ -x "$submit" ] && [ -x "$top" ] || {
  echo "telemetry_smoke: build mcs_server + mcs_submit + mcs_top first" >&2
  exit 1
}

port=$(( (RANDOM % 20000) + 30000 ))
work=$(mktemp -d)
server_pid=
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

"$server" --tcp "$port" --slots 2 \
          --telemetry-interval-ms 50 --telemetry-ring 64 &
server_pid=$!

# The batch: two heavy jobs pin both slots while the third queues, so the
# mid-flight scrape sees running *and* queued rows.  No shutdown line --
# the client exits once every job reported done, leaving the server up for
# the post-drain scrape.
cat > "$work/session.ndjson" <<'EOF'
{"type": "submit", "id": "t-heavy1", "flow": "gen:multiplier,bits=128; compress2rs; compress2rs"}
{"type": "submit", "id": "t-heavy2", "flow": "gen:multiplier,bits=128; compress2rs; compress2rs"}
{"type": "submit", "id": "t-small", "flow": "gen:adder,bits=16; rewrite"}
EOF
"$submit" --connect "tcp:127.0.0.1:$port" --retry 20 \
          --script "$work/session.ndjson" > "$work/responses.ndjson" &
batch_pid=$!

sleep 0.2  # let the heavy jobs get going (and the sampler collect)

echo "--- mid-batch admin scrape ---"
"$submit" --connect "tcp:127.0.0.1:$port" --retry 20 --ping
"$submit" --connect "tcp:127.0.0.1:$port" --health | tee "$work/health.json"
"$submit" --connect "tcp:127.0.0.1:$port" --jobs | tee "$work/jobs.json"
"$submit" --connect "tcp:127.0.0.1:$port" --stats > "$work/stats_mid.json"
"$top" --connect "tcp:127.0.0.1:$port" --once

# The stats reply embeds the obs exports: pull the Prometheus text out and
# validate the exposition; sanity-check the telemetry ring settings.
python3 - "$work/stats_mid.json" "$work/prom_mid.txt" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
open(sys.argv[2], "w").write(stats["prometheus"])
assert stats["ring"]["capacity"] == 64, stats["ring"]["capacity"]
assert stats["ring"]["interval_ms"] == 50, stats["ring"]["interval_ms"]
assert "counters" in stats["metrics"], "stats must embed the obs registry"
health = json.load(open(sys.argv[1].replace("stats_mid", "health")))
assert health["status"] in ("ok", "draining"), health
assert health["telemetry"] is True, "sampler should be on"
EOF
python3 scripts/check_prom.py "$work/prom_mid.txt"

wait "$batch_pid"
completed=$(python3 -c '
import json, sys
done = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
print(sum(1 for m in done
          if m.get("type") == "done" and m.get("status") == "ok"))
' "$work/responses.ndjson")
[ "$completed" -eq 3 ] || {
  echo "telemetry_smoke: FAIL: expected 3 ok jobs, got $completed" >&2
  exit 1
}

# Post-drain scrape: the job counters in the exposition must exactly match
# the session's own done-line accounting, and the ring must have
# accumulated samples.
"$submit" --connect "tcp:127.0.0.1:$port" --stats > "$work/stats_end.json"
python3 - "$work/stats_end.json" "$work/prom_end.txt" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
open(sys.argv[2], "w").write(stats["prometheus"])
assert len(stats["ring"]["samples"]) > 0, "sampler ring stayed empty"
EOF
python3 scripts/check_prom.py "$work/prom_end.txt" \
  server_jobs_accepted="$completed" server_jobs_completed="$completed" \
  server_jobs_failed=0 server_jobs_rejected=0

"$submit" --connect "tcp:127.0.0.1:$port" --shutdown --quiet
wait "$server_pid"
echo "telemetry_smoke: OK -- $completed jobs completed, exposition valid"
