#!/usr/bin/env bash
# Crash-recovery integration test: a supervised mcs_server on a Unix
# socket loses its worker to kill -9 mid-job.  The supervisor must restart
# the worker, the restarted worker must replay the fsync'd journal, and
# the client -- reconnecting with --retry and re-binding via "attach" --
# must still receive a "done" line for the interrupted job, marked
# "retried": true.  Finally a protocol shutdown drains the worker and the
# supervisor exits 0.
#
# Usage: scripts/crash_recovery.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

build_dir=${1:-build}
server=$build_dir/tools/mcs_server
submit=$build_dir/tools/mcs_submit
[ -x "$server" ] && [ -x "$submit" ] || {
  echo "crash_recovery: build mcs_server + mcs_submit first ($build_dir)" >&2
  exit 1
}

sup_pid=""
work=$(mktemp -d)
trap 'kill "$sup_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

fail() {
  echo "crash_recovery: FAIL: $*" >&2
  echo "--- supervisor log ---" >&2
  cat "$work/server.log" >&2 || true
  echo "--- client output ---" >&2
  cat "$work/client.out" >&2 || true
  exit 1
}

sock=$work/mcs.sock
journal=$work/journal.ndjson

"$server" --unix "$sock" --supervise --journal "$journal" \
          --pidfile "$work/worker.pid" --max-restarts 5 --backoff-ms 50 \
          --slots 2 2> "$work/server.log" &
sup_pid=$!

for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || fail "server never bound $sock"

# A job slow enough that the kill below lands mid-run; the client keeps
# retrying across the crash window.
"$submit" --connect "unix:$sock" --id crashjob \
          --flow "gen:multiplier,bits=64; compress2rs; compress2rs; compress2rs" \
          --retry 10 --retry-backoff-ms 100 > "$work/client.out" &
client_pid=$!

# Wait past the first *stage checkpoint*, not just the "started" marker:
# the kill must land after a snapshot is durably on disk, so the restarted
# worker demonstrably resumes mid-flow instead of replaying from stage 0.
for _ in $(seq 1 200); do
  grep -q '"e": "stage_ckpt"' "$journal" 2>/dev/null && break
  sleep 0.05
done
grep -q '"e": "started"' "$journal" || fail "crashjob never started"
grep -q '"e": "stage_ckpt"' "$journal" \
  || fail "no stage checkpoint landed before the kill window"

worker1=$(cat "$work/worker.pid")
kill -9 "$worker1"
echo "crash_recovery: killed worker $worker1 mid-job"

if ! wait "$client_pid"; then
  fail "client exited nonzero after the worker crash"
fi

worker2=$(cat "$work/worker.pid")
[ "$worker1" != "$worker2" ] || fail "supervisor never forked a new worker"
grep -q "restart 1/" "$work/server.log" \
  || fail "supervisor log records no restart"

python3 - "$work/client.out" <<'EOF' || exit 1
import json, sys

done = None
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    msg = json.loads(line)  # every line must be well-formed JSON
    if msg.get("type") == "done" and msg.get("job") == "crashjob":
        done = msg

def check(cond, what):
    if not cond:
        sys.exit(f"crash_recovery: FAIL: {what}")

check(done is not None, "client never received a done line for crashjob")
check(done["status"] == "ok", f"crashjob status {done['status']}, wanted ok")
check(done.get("retried") is True,
      "the replayed job's done line should carry \"retried\": true")
check(done.get("resumed_stage", -1) >= 1,
      "the replayed job should resume from a stage checkpoint "
      f"(resumed_stage={done.get('resumed_stage')}, wanted >= 1)")
print("crash_recovery: crashjob completed after replay, "
      f"retried=true, resumed_stage={done['resumed_stage']}")
EOF

# The restarted worker compacts the journal on replay, so every surviving
# "stage" entry postdates the crash: a stage-0 entry would mean the
# checkpoint was ignored and the flow re-ran from scratch.
grep -q '"e": "stage_ckpt"' "$journal" \
  || fail "restarted worker journaled no stage checkpoints"
if grep -q '"e": "stage", "job": "crashjob", "index": 0' "$journal"; then
  fail "restarted worker re-ran stage 0 despite a stage checkpoint"
fi

# Graceful end: drain via protocol shutdown; the worker exits 0 and the
# supervisor follows with exit 0 (no restart on a clean exit).
"$submit" --connect "unix:$sock" --shutdown > "$work/drain.out"
if ! wait "$sup_pid"; then
  fail "supervisor exited nonzero after a clean drain"
fi
sup_pid=""

python3 - "$work/drain.out" <<'EOF' || exit 1
import json, sys

drained = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        msg = json.loads(line)
        if msg.get("type") == "drained":
            drained = msg

def check(cond, what):
    if not cond:
        sys.exit(f"crash_recovery: FAIL: {what}")

check(drained is not None, "no drained line after shutdown")
check(drained["jobs"] == 0, "drained should report zero jobs in flight")
check(drained["retried"] >= 1,
      "the restarted worker should count >= 1 retried job")
check(drained.get("resumed", 0) >= 1,
      "the restarted worker should count >= 1 checkpoint-resumed job")
EOF

echo "crash_recovery: OK -- worker $worker1 killed, $worker2 replayed the job"
