#!/usr/bin/env bash
# End-to-end smoke test of the mcs_server daemon in pipe mode (no
# networking): a FIFO pair feeds one server process a mixed batch through
# mcs_submit --script -- small maps, a heavier optimization job, an inline
# AIGER input, a job that gets cancelled mid-session, a rejected submit and
# a malformed line -- then requests shutdown and checks the drain
# accounting.
#
# Fault mode: when MCS_FAULTS is set (the fault-soak CI job rotates specs
# like "server.line=throw,every=5") the injected faults legitimately change
# job outcomes, so the exact per-job assertions give way to the invariants
# that must hold under ANY fault schedule: the daemon exits 0, every output
# line stays well-formed JSON, the session still drains to zero jobs, and
# the drained counters exactly balance the response stream (every accepted
# job got a done line; every error line is accounted as a rejection or a
# protocol error).  Specs targeting server.emit drop response lines by
# design and break that line accounting -- don't use them here.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

build_dir=${1:-build}
server=$build_dir/tools/mcs_server
submit=$build_dir/tools/mcs_submit
[ -x "$server" ] && [ -x "$submit" ] || {
  echo "server_smoke: build mcs_server + mcs_submit first ($build_dir)" >&2
  exit 1
}

work=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

mkfifo "$work/to_server" "$work/from_server"

# Heavy job first so the small jobs demonstrably overtake it; cancellation
# targets the second heavy job after a short delay so it is (on any but an
# absurdly fast machine) mid-run when the cancel lands -- and "cancelled
# before start" is an equally valid outcome on a loaded runner.  The
# "inline" job carries its netlist as inline ASCII AIGER, which is what the
# server.input short-read fault site truncates.
cat > "$work/session.ndjson" <<'EOF'
{"type": "ping"}
{"type": "submit", "id": "heavy", "flow": "gen:multiplier,bits=64; compress2rs", "weight": 1.0}
{"type": "submit", "id": "victim", "flow": "gen:multiplier,bits=64; compress2rs; compress2rs; compress2rs"}
{"type": "submit", "id": "small1", "flow": "gen:adder,bits=8; map_lut:k=4"}
{"type": "submit", "id": "small2", "flow": "gen:adder,bits=16; rewrite"}
{"type": "submit", "id": "small3", "flow": "gen:adder,bits=8; compress2rs; cec"}
{"type": "submit", "id": "inline", "flow": "strash; rewrite", "input": {"format": "aiger", "text": "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"}}
{"type": "submit", "id": "reject-me", "flow": "no_such_pass:bogus=1"}
this line is not JSON at all
{"type": "submit", "id": "late-timeout", "flow": "gen:multiplier,bits=64; compress2rs", "timeout_ms": 1}
!sleep 150
{"type": "cancel", "id": "victim"}
{"type": "shutdown"}
EOF

if [ -n "${MCS_FAULTS:-}" ]; then
  # A server.line fault can eat the shutdown request (it becomes a protocol
  # error).  An every=N schedule cannot fire on two consecutive lines, so a
  # second shutdown guarantees the drain -- the server stops reading at the
  # first one that lands, leaving a surplus line unread at worst.
  echo '{"type": "shutdown"}' >> "$work/session.ndjson"
fi

"$server" --pipe < "$work/to_server" > "$work/from_server" &
server_pid=$!

# Under injected faults a submit may be eaten before acceptance and its job
# then never reports done, which makes the client exit 1 by design; the
# daemon's own exit code is asserted by the wait below either way.
"$submit" --connect "pipe:$work/to_server,$work/from_server" \
          --script "$work/session.ndjson" > "$work/responses.ndjson" \
  || [ -n "${MCS_FAULTS:-}" ]

wait "$server_pid"
echo "--- session transcript ---"
cat "$work/responses.ndjson"
echo "--------------------------"

python3 - "$work/responses.ndjson" <<'EOF'
import json, os, sys

fault_mode = bool(os.environ.get("MCS_FAULTS"))

done, errors, types = {}, [], []
accepted_lines = 0
drained = None
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    msg = json.loads(line)  # every server line must be well-formed JSON
    types.append(msg["type"])
    if msg["type"] == "done":
        done[msg["job"]] = msg["status"]
    elif msg["type"] == "accepted":
        accepted_lines += 1
    elif msg["type"] == "error":
        errors.append(msg)
    elif msg["type"] == "drained":
        drained = msg

def check(cond, what):
    if not cond:
        sys.exit(f"server_smoke: FAIL: {what}")

check(drained is not None, "session should end with a drained line")
check(drained["jobs"] == 0, "drained should report zero jobs in flight")

if fault_mode:
    # Invariants that hold under any fault schedule: the counters must
    # exactly balance the response stream, whatever the faults did to the
    # individual jobs.
    finished = (drained["completed"] + drained["failed"] +
                drained["cancelled"] + drained["timed_out"])
    check(drained["accepted"] == finished,
          f"accepted {drained['accepted']} != finished {finished}")
    check(len(done) == drained["accepted"],
          f"{len(done)} done lines for {drained['accepted']} accepted jobs")
    check(accepted_lines == drained["accepted"],
          f"{accepted_lines} accepted lines vs counter {drained['accepted']}")
    # Per-job error lines split into rejected submits and failed
    # cancel/attach lookups (the latter are answered but not counted as
    # rejections); job-less error lines are exactly the protocol errors.
    rejects = sum(1 for e in errors if e.get("job")
                  and not e["error"].startswith(("cancel:", "attach:")))
    protocol_errors = sum(1 for e in errors if not e.get("job"))
    check(rejects == drained["rejected"],
          f"{rejects} reject error lines vs rejected {drained['rejected']}")
    check(protocol_errors == drained["protocol_errors"],
          f"{protocol_errors} protocol error lines vs counter "
          f"{drained['protocol_errors']}")
    print(f"server_smoke: OK under MCS_FAULTS={os.environ['MCS_FAULTS']} --",
          f"{len(done)} done, {drained['rejected']} rejected,",
          f"{drained['protocol_errors']} protocol errors, drain balanced")
    sys.exit(0)

check(types[0] == "pong", "first response should be the pong")
for job in ("heavy", "small1", "small2", "small3", "inline"):
    check(done.get(job) == "ok", f"{job} should finish ok (got {done.get(job)})")
check(done.get("victim") == "cancelled",
      f"victim should be cancelled (got {done.get('victim')})")
check(done.get("late-timeout") == "timeout",
      f"late-timeout should time out (got {done.get('late-timeout')})")
check(any(e.get("job") == "reject-me" for e in errors),
      "reject-me should be rejected with an error line")
check(any("job" not in e for e in errors),
      "the malformed line should produce a job-less protocol error")
check(drained["completed"] == 5, f"5 ok jobs (got {drained['completed']})")
check(drained["cancelled"] == 1, "1 cancelled job")
check(drained["timed_out"] == 1, "1 timed-out job")
check(drained["rejected"] == 1, "1 rejected submit")
check(drained["protocol_errors"] == 1, "1 protocol error")

# Fairness, observable in the stream order: both small map jobs must be
# done before the heavy compress2rs job finishes (they were submitted
# later; stage-granular fair scheduling lets them overtake).
order = [m["job"] for m in map(json.loads, open(sys.argv[1]))
         if m.get("type") == "done"]
check(order.index("small1") < order.index("heavy"),
      f"small1 should finish before heavy (order: {order})")
print("server_smoke: OK --", len(order), "jobs done in order", order)
EOF
