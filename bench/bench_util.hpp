/// Shared infrastructure for the table/figure reproduction benches:
/// timing, geometric means, table printing and fast functional checks.

#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mcs/flow/flow.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Geometric mean of positive values (zeros are clamped to a small epsilon
/// so degenerate rows cannot zero the whole mean).
inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : values) acc += std::log(std::max(v, 1e-9));
  return std::exp(acc / static_cast<double>(values.size()));
}

/// Improvement of `ours` vs `base` in percent (positive = better/smaller).
inline double improvement(double base, double ours) {
  return 100.0 * (base - ours) / base;
}

/// Scale factor for the generated suite: MCS_SCALE in (0, 1]; default keeps
/// the full 6-flow evaluation around a few minutes on one core.
inline double suite_scale_or(double dflt) {
  if (const char* env = std::getenv("MCS_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.05 && s <= 1.0) return s;
  }
  return dflt;
}
inline double suite_scale() { return suite_scale_or(0.6); }

/// Fast functional check: word-parallel random simulation of the original
/// network vs a mapped LUT network (the unit tests carry the full formal
/// CEC burden; benches use 2048 random vectors).
inline bool sim_check(const Network& net, const LutNetwork& lnet,
                      std::uint64_t seed = 0xbadc0de) {
  RandomSimulation sim(net, 32, seed);
  for (int w = 0; w < 32; ++w) {
    std::vector<std::uint64_t> pi_vals;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi_vals.push_back(sim.node_values(net.pi_at(i))[w]);
    }
    const auto pos = lnet.simulate(pi_vals);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal s = net.po_at(i);
      const std::uint64_t expect =
          sim.node_values(s.node())[w] ^ (s.complemented() ? ~0ull : 0ull);
      if (pos[i] != expect) return false;
    }
  }
  return true;
}

/// Same for an ASIC cell netlist.
inline bool sim_check(const Network& net, const CellNetlist& m,
                      std::uint64_t seed = 0xbadc0de) {
  RandomSimulation sim(net, 32, seed);
  for (int w = 0; w < 32; ++w) {
    std::vector<std::uint64_t> pi_vals;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi_vals.push_back(sim.node_values(net.pi_at(i))[w]);
    }
    const auto pos = m.simulate(pi_vals);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal s = net.po_at(i);
      const std::uint64_t expect =
          sim.node_values(s.node())[w] ^ (s.complemented() ? ~0ull : 0ull);
      if (pos[i] != expect) return false;
    }
  }
  return true;
}

/// Secondary sink for all JsonLine output: when MCS_BENCH_OUT names a file,
/// every line is appended there in addition to stdout (opened once, shared
/// by every bench in the process).  This is how bench runs leave a
/// machine-readable trace (e.g. BENCH_kernel.json) for compare_bench.py
/// without redirect plumbing in CI.
inline std::FILE* bench_out_file() {
  static std::FILE* f = [] {
    const char* path = std::getenv("MCS_BENCH_OUT");
    return path != nullptr ? std::fopen(path, "a") : nullptr;
  }();
  return f;
}

/// Minimal machine-readable result emitter: one JSON object per line, e.g.
///   bench::JsonLine("parallel").field("threads", 4).field("seconds", 1.5);
/// prints {"bench": "parallel", "threads": 4, "seconds": 1.5} on
/// destruction.  Keeps the bench outputs greppable and scriptable without
/// a JSON dependency.  Pass an explicit FILE* to write somewhere other
/// than stdout (+ the MCS_BENCH_OUT duplicate).
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench, std::FILE* out = nullptr)
      : out_(out) {
    line_ = "{\"bench\": ";
    append_quoted(bench);
  }
  JsonLine(const JsonLine&) = delete;
  JsonLine& operator=(const JsonLine&) = delete;
  ~JsonLine() {
    std::fprintf(out_ ? out_ : stdout, "%s}\n", line_.c_str());
    if (out_ == nullptr) {
      if (std::FILE* dup = bench_out_file()) {
        std::fprintf(dup, "%s}\n", line_.c_str());
        std::fflush(dup);
      }
    }
  }

  JsonLine& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  JsonLine& field(const std::string& key, std::size_t value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& field(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonLine& field(const std::string& key, const std::string& value) {
    begin_field(key);
    append_quoted(value);
    return *this;
  }
  JsonLine& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  /// Embeds \p json verbatim as a nested value (the caller guarantees it is
  /// well-formed JSON); used for the per-row metrics objects.
  JsonLine& object(const std::string& key, const std::string& json) {
    return raw(key, json);
  }

 private:
  void append_quoted(const std::string& s) {
    line_ += '"';
    for (const char c : s) {
      // Control characters (e.g. newlines in captured error notes) would
      // break the one-JSON-object-per-line contract.
      switch (c) {
        case '"': line_ += "\\\""; break;
        case '\\': line_ += "\\\\"; break;
        case '\n': line_ += "\\n"; break;
        case '\r': line_ += "\\r"; break;
        case '\t': line_ += "\\t"; break;
        default: line_ += c; break;
      }
    }
    line_ += '"';
  }
  void begin_field(const std::string& key) {
    line_ += ", ";
    append_quoted(key);
    line_ += ": ";
  }
  JsonLine& raw(const std::string& key, const std::string& value) {
    begin_field(key);
    line_ += value;
    return *this;
  }
  std::FILE* out_;
  std::string line_;
};

/// Counter movement over a code region, attachable to bench rows as a
/// nested `"metrics"` object (flat counter-name -> delta).  compare_bench.py
/// diffs these alongside wall time, catching work-amount regressions (e.g.
/// strash probe blow-ups, sweep SAT-call count changes) that timing noise
/// hides.  With MCS_OBS_DISABLE the object is empty and the diff is a
/// no-op.
class MetricsWindow {
 public:
  MetricsWindow() : before_(obs::snapshot()) {}

  /// Restarts the window (e.g. after warm-up iterations).
  void reset() { before_ = obs::snapshot(); }

  /// The counters that moved since construction/reset, as one JSON object.
  std::string delta_json() const {
    const obs::MetricsSnapshot d = obs::snapshot_delta(before_);
    std::string out = "{";
    for (std::size_t i = 0; i < d.counters.size(); ++i) {
      if (i) out += ", ";
      out += '"' + d.counters[i].name + "\": " +
             std::to_string(d.counters[i].value);
    }
    out += "}";
    return out;
  }

  void attach(JsonLine& line) const { line.object("metrics", delta_json()); }

 private:
  obs::MetricsSnapshot before_;
};

/// Emits a flow::FlowReport as JSON lines: one line per stage plus a
/// summary line, each tagged with the bench and circuit names.  This is
/// how the flow-based benches keep their output greppable/scriptable.
inline void emit_flow_report(const std::string& bench,
                             const std::string& circuit,
                             const flow::FlowReport& report) {
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const flow::StageReport& s = report.stages[i];
    JsonLine line(bench);
    line.field("circuit", circuit)
        .field("stage", i)
        .field("pass", s.pass)
        .field("args", s.args)
        .field("ok", s.ok)
        .field("seconds", s.seconds)
        .field("gates", s.gates)
        .field("depth", static_cast<std::size_t>(s.depth))
        .field("choices", s.choices);
    if (s.luts) {
      line.field("luts", s.luts)
          .field("lut_depth", static_cast<std::size_t>(s.lut_depth));
    }
    if (s.cells) {
      line.field("cells", s.cells).field("area", s.area).field("delay",
                                                               s.delay);
    }
    if (!s.note.empty()) line.field("note", s.note);
  }
  JsonLine(bench)
      .field("circuit", circuit)
      .field("summary", true)
      .field("ok", report.ok)
      .field("total_seconds", report.total_seconds);
}

/// Network-vs-network simulation check (same PI/PO interface).
inline bool sim_check(const Network& a, const Network& b,
                      std::uint64_t seed = 0xbadc0de) {
  RandomSimulation sa(a, 32, seed);
  RandomSimulation sb(b, 32, seed);
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const Signal pa = a.po_at(i);
    const Signal pb = b.po_at(i);
    const std::uint64_t flip =
        pa.complemented() != pb.complemented() ? ~0ull : 0ull;
    for (int w = 0; w < 32; ++w) {
      if ((sa.node_values(pa.node())[w] ^ flip) !=
          sb.node_values(pb.node())[w]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mcs::bench
