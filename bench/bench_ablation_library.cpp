/// Ablation C (DESIGN.md): library dependence of the MCH gains.
///
/// The paper's heterogeneous candidates (MAJ/XOR structures) can only win
/// mapping if the target library contains cells that realize them cheaply.
/// This bench maps the same MCH networks against the full mini-ASAP7
/// library and against a basic NAND/NOR/AOI-only variant (no XOR3/MAJ
/// cells), isolating how much of the MCH area gain is attributable to the
/// heterogeneous cells themselves.

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/choice/analysis.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main() {
  const double scale = bench::suite_scale();
  std::printf("=== Ablation C: library dependence of MCH gains (suite scale "
              "%.2f) ===\n\n", scale);
  const TechLibrary full = TechLibrary::asap7_mini();
  const TechLibrary basic = TechLibrary::asap7_mini_basic();
  std::printf("full library: %zu cells; basic library: %zu cells (no "
              "XOR3/MAJ)\n\n", full.cells().size(), basic.cells().size());

  const char* names[] = {"adder", "sin", "multiplier", "voter", "max",
                         "priority"};
  std::vector<circuits::BenchmarkCircuit> cases;
  for (auto& bc : circuits::epfl_suite(scale)) {
    for (const char* n : names) {
      if (bc.name == n) cases.push_back(std::move(bc));
    }
  }

  std::printf("%-11s | %-21s | %-21s | %-10s\n", "circuit",
              "full lib base/MCH A", "basic lib base/MCH A", "MCH gain");
  std::printf("%-11s | %-21s | %-21s | full/basic\n", "", "", "");
  std::printf("--------------------------------------------------------------"
              "-------\n");

  std::vector<double> gain_full, gain_basic;
  for (const auto& bc : cases) {
    const Network opt =
        compress2rs_like(expand_to_aig(bc.net), GateBasis::aig(), 2);
    // Full library: XMG candidates.  Basic library: the richest candidates
    // it can realize are XAG (a basic library cannot even host native
    // MAJ3/XOR3 nodes -- which is precisely the technology dependence this
    // ablation measures).
    MchParams mch_params;
    mch_params.candidate_basis = GateBasis::xmg();
    mch_params.critical_ratio = 0.95;
    const Network mch_full = build_mch(opt, mch_params);
    mch_params.candidate_basis = GateBasis::xag();
    const Network mch_basic = build_mch(opt, mch_params);

    AsicMapParams area;
    area.objective = AsicMapParams::Objective::kArea;
    AsicMapParams area_plain = area;
    area_plain.use_choices = false;

    const double f_base = asic_map(opt, full, area_plain).area;
    const double f_mch = asic_map(mch_full, full, area).area;
    const double b_base = asic_map(opt, basic, area_plain).area;
    const double b_mch = asic_map(mch_basic, basic, area).area;
    gain_full.push_back(f_base / std::max(f_mch, 1e-9));
    gain_basic.push_back(b_base / std::max(b_mch, 1e-9));

    std::printf("%-11s | %9.2f %9.2f   | %9.2f %9.2f   | %5.1f%% / %5.1f%%\n",
                bc.name.c_str(), f_base, f_mch, b_base, b_mch,
                100.0 * (1.0 - f_mch / f_base),
                100.0 * (1.0 - b_mch / b_base));
    std::fflush(stdout);
  }

  std::printf("--------------------------------------------------------------"
              "-------\n");
  std::printf("geomean MCH area gain: full lib %.2f%%, basic lib %.2f%%\n",
              100.0 * (1.0 - 1.0 / bench::geomean(gain_full)),
              100.0 * (1.0 - 1.0 / bench::geomean(gain_basic)));
  std::printf(
      "\nExpected shape: the MCH area gain shrinks on the basic library, "
      "most sharply on\nMAJ/XOR-rich arithmetic (multiplier) -- "
      "heterogeneous candidates matter most when\nthe library can realize "
      "MAJ/XOR3 structures as single cells, supporting the\npaper's "
      "technology-aware premise.\n");
  return 0;
}
