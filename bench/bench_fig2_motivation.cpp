/// Reproduces Fig. 2 of the paper: the motivating example.  A comparator
/// `res = (a + b) > 0` is pushed through three flows:
///   1. the traditional flow (technology-independent optimization, then
///      mapping),
///   2. optimization + DCH structural choices + mapping,
///   3. the MCH-based mapping flow.
/// The paper's observation: optimization shrinks the AIG but does not help
/// (and can hurt) the eventual mapping; DCH cannot recover because all its
/// candidates come from the same representation; MCH's heterogeneous
/// candidates yield a better mapped netlist.
///
/// We use 4-bit operands (the paper uses 2-bit); at 2 bits our optimizer
/// already collapses the function to its global optimum and every flow
/// ties, which hides the effect the figure demonstrates.

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/wordlib.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

namespace {

Network demo_network(int bits) {
  Network net;
  const circuits::Word a = circuits::make_pi_word(net, bits, "a");
  const circuits::Word b = circuits::make_pi_word(net, bits, "b");
  const circuits::Word sum = circuits::add(net, a, b, true);
  net.create_po(circuits::reduce_or(net, sum), "res");
  return expand_to_aig(net);
}

void report(const char* flow, const Network& subject,
            const CellNetlist& mapped, const Network& reference) {
  std::size_t live_nodes = 0;
  for (const NodeId n : choice_topo_order(subject)) {
    if (subject.is_gate(n)) ++live_nodes;
  }
  std::printf("%-28s nodes=%-4zu choices=%-3zu level=%-2u  area=%6.3f um2  "
              "delay=%6.2f ps  %s\n",
              flow, live_nodes, subject.num_choices(), subject.depth(),
              mapped.area, mapped.delay,
              bench::sim_check(reference, mapped) ? "[sim-ok]"
                                                  : "[SIM-MISMATCH]");
}

}  // namespace

int main() {
  std::printf("=== Fig. 2: motivating example res = (a + b) > 0 ===\n\n");
  const Network original = demo_network(4);
  const TechLibrary lib = TechLibrary::asap7_mini();
  AsicMapParams map_params;  // balanced: delay-oriented with area recovery
  map_params.objective = AsicMapParams::Objective::kDelay;

  std::printf("original AIG: %zu nodes, level %u\n\n", original.num_gates(),
              original.depth());

  // Technology-independent optimization (rewrite + balance rounds, the
  // "compress2" part of the paper's flow).
  const Network optimized =
      balance(rewrite(balance(original), {.basis = GateBasis::aig()}));

  // --- flow 1: traditional ---------------------------------------------
  {
    AsicMapParams p = map_params;
    p.use_choices = false;
    const auto mapped = asic_map(optimized, lib, p);
    report("traditional (opt; map)", optimized, mapped, original);
  }

  // --- flow 2: DCH ------------------------------------------------------
  {
    const Network dch =
        build_dch({optimized, balance(optimized), original});
    const auto mapped = asic_map(dch, lib, map_params);
    report("DCH (opt; dch; map)", dch, mapped, original);
  }

  // --- flow 3: MCH ------------------------------------------------------
  {
    // MCH preserves the original structure through structural choices and
    // stacks heterogeneous candidates on top (paper, Sec. III-A): start
    // from the optimized network merged with the original, then add
    // XMG-flavored candidates.
    MchParams mch_params;
    mch_params.candidate_basis = GateBasis::xmg();
    mch_params.critical_ratio = 0.5;
    mch_params.max_choices_per_node = 4;
    const Network mch = build_mch(optimized, mch_params);
    const auto mapped = asic_map(mch, lib, map_params);
    report("MCH (mch; map)", mch, mapped, original);
  }

  std::printf(
      "\nExpected shape (paper Fig. 2): the optimized AIG has fewer nodes "
      "but maps no\nbetter than the original; MCH, storing heterogeneous "
      "candidates, maps to a\nsmaller and/or faster netlist than both.\n");
  return 0;
}
