#!/usr/bin/env python3
"""Compare two kernel-bench JSON-line files and flag regressions.

Input files are what `bench_micro --json=PATH` (and any bench run with
MCS_BENCH_OUT=PATH) produce: one JSON object per line, each carrying a
"bench" name plus metrics.  Throughput ("items_per_sec", higher is better)
is preferred for the comparison; benches without it fall back to "seconds"
(lower is better).  When a file holds several lines for one bench (appended
runs), the best value wins.

Rows may carry two extra payloads this script understands:

  "hardware_threads": N -- the runner's core count.  When baseline and
      current disagree, wall-clock comparisons are not apples-to-apples:
      a caveat is printed and *timing* regressions are downgraded to
      warnings (work-amount regressions below still fail the run).
  "metrics": {...} -- a flat counter-delta object (see bench_util.hpp's
      MetricsWindow).  Counters measure the *amount of work* (strash
      probes, sweep SAT calls), which is hardware-independent, so these
      are diffed with the same threshold and always enforced.  Tracked
      indicators: the strash collision rate (extra probes per lookup)
      and the sweep/CEC SAT-call count.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold PCT] [--warn-only]

Exits 1 when any bench regresses by more than the threshold (default 10%),
unless --warn-only is given (informational mode, e.g. CI runners whose
hardware differs from the committed baseline's).
"""

import argparse
import json
import sys


def load(path):
    """bench key -> row dict: metric/value/higher_better/metrics/hw_threads.

    Thread-scaling entries (lines carrying a "threads" field, e.g. the
    `bench_micro --json-par` suite) are keyed "name@tN" so the regression
    check compares equal thread counts against each other.
    """
    best = {}
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: not a JSON line: {e}")
            name = obj.get("bench")
            if not name:
                continue
            if "threads" in obj:
                name = f"{name}@t{obj['threads']}"
            if "items_per_sec" in obj:
                metric, value, higher_better = ("items_per_sec",
                                                float(obj["items_per_sec"]),
                                                True)
            elif "seconds" in obj:
                metric, value, higher_better = ("seconds",
                                                float(obj["seconds"]), False)
            else:
                continue
            prev = best.get(name)
            if prev is None or (value > prev["value"]) == higher_better:
                best[name] = {
                    "metric": metric,
                    "value": value,
                    "higher_better": higher_better,
                    "metrics": obj.get("metrics") or {},
                    "hw_threads": obj.get("hardware_threads"),
                }
    return best


def hw_threads_of(benches):
    """The distinct hardware_threads values announced by a run's rows."""
    return {row["hw_threads"] for row in benches.values()
            if row["hw_threads"] is not None}


def work_indicators(metrics):
    """Hardware-independent work-amount indicators from a metrics delta.

    Lower is better for every indicator returned.
    """
    out = {}
    lookups = metrics.get("strash.lookups", 0)
    collisions = metrics.get("strash.collisions")
    if collisions is None and "strash.probes" in metrics:
        # Older baselines recorded total probes instead of collisions.
        collisions = metrics["strash.probes"] - lookups
    if lookups > 0 and collisions is not None and collisions >= 0:
        # Extra probes per lookup: the open-addressing collision rate.
        out["strash_collision_rate"] = collisions / lookups
    if "sweep.sat_calls" in metrics:
        out["sweep_sat_calls"] = float(metrics["sweep.sat_calls"])
    if "cec.batches" in metrics:
        out["cec_batches"] = float(metrics["cec.batches"])
    return out


def compare_work(name, base_row, cur_row, threshold, regressions):
    """Diffs the work indicators of one bench; appends to regressions."""
    base_ind = work_indicators(base_row["metrics"])
    cur_ind = work_indicators(cur_row["metrics"])
    for key in sorted(set(base_ind) & set(cur_ind)):
        b, c = base_ind[key], cur_ind[key]
        if b <= 0:
            continue
        growth = (c - b) / b * 100.0
        mark = ""
        if growth > threshold:
            mark = "  <-- WORK REGRESSION"
            regressions.append(
                (name, f"{key} grew {growth:.1f}% ({b:.4g} -> {c:.4g})"))
        print(f"{name:<24} {key:<22} {b:>12.4g} {c:>12.4g} "
              f"{growth:>+7.1f}%{mark}")


def report_speedup(benches, label):
    """Speedup-vs-1-thread table for every thread-scaling bench group."""
    groups = {}
    for key, row in benches.items():
        if "@t" not in key or row["metric"] != "seconds":
            continue
        name, threads = key.rsplit("@t", 1)
        try:
            groups.setdefault(name, {})[int(threads)] = row["value"]
        except ValueError:
            continue
    printed_header = False
    for name in sorted(groups):
        by_threads = groups[name]
        if 1 not in by_threads or by_threads[1] <= 0:
            continue
        if not printed_header:
            print(f"\nthread scaling ({label}):")
            print(f"{'bench':<24} " +
                  " ".join(f"{f't={t}':>9}" for t in sorted(by_threads)))
            printed_header = True
        base = by_threads[1]
        cells = " ".join(f"{base / by_threads[t]:>8.2f}x"
                         if by_threads[t] > 0 else f"{'-':>9}"
                         for t in sorted(by_threads))
        print(f"{name:<24} {cells}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        sys.exit(f"{args.baseline}: no benches found")
    if not cur:
        sys.exit(f"{args.current}: no benches found")

    # Hardware caveat: wall-clock numbers from different machines (or core
    # counts) do not compare.  Timing regressions become warnings; the
    # work-amount diff below is unaffected.
    base_hw, cur_hw = hw_threads_of(base), hw_threads_of(cur)
    timing_comparable = not base_hw or not cur_hw or base_hw == cur_hw
    if not timing_comparable:
        print(f"CAVEAT: baseline ran on hardware_threads={sorted(base_hw)} "
              f"but current on {sorted(cur_hw)}; wall-clock deltas are not "
              "comparable and will not fail the run (work-amount metrics "
              "still do).")

    timing_regressions = []
    work_regressions = []
    print(f"{'bench':<24} {'metric':<14} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<24} {'(new)':<14} {'-':>12} "
                  f"{cur[name]['value']:>12.4g} {'-':>8}")
            continue
        if name not in cur:
            print(f"{name:<24} {'(missing)':<14} "
                  f"{base[name]['value']:>12.4g} {'-':>12} {'-':>8}")
            timing_regressions.append((name, "missing from current run"))
            continue
        row_b, row_c = base[name], cur[name]
        metric, b = row_b["metric"], row_b["value"]
        higher_better = row_b["higher_better"]
        c = row_c["value"]
        if b == 0:
            continue
        # Positive delta = improvement under either metric orientation.
        delta = (c - b) / b * 100.0 if higher_better else (b - c) / b * 100.0
        mark = ""
        if delta < -args.threshold:
            mark = "  <-- REGRESSION"
            timing_regressions.append((name, f"{-delta:.1f}% slower"))
        print(f"{name:<24} {metric:<14} {b:>12.4g} {c:>12.4g} "
              f"{delta:>+7.1f}%{mark}")

    # Work-amount diff: counter deltas attached by MetricsWindow.
    pairs = [(n, base[n], cur[n]) for n in sorted(set(base) & set(cur))
             if work_indicators(base[n]["metrics"]) and
             work_indicators(cur[n]["metrics"])]
    if pairs:
        print(f"\n{'bench':<24} {'work indicator':<22} {'baseline':>12} "
              f"{'current':>12} {'delta':>8}")
        for name, row_b, row_c in pairs:
            compare_work(name, row_b, row_c, args.threshold, work_regressions)

    report_speedup(cur, "current run")

    fatal = list(work_regressions)
    if timing_comparable:
        fatal += timing_regressions
    elif timing_regressions:
        print(f"\n{len(timing_regressions)} timing regression(s) ignored "
              "(hardware mismatch; see caveat above)", file=sys.stderr)

    if fatal:
        print(f"\n{len(fatal)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, why in fatal:
            print(f"  {name}: {why}", file=sys.stderr)
        if not args.warn_only:
            sys.exit(1)
        print("(--warn-only: exiting 0)", file=sys.stderr)
    else:
        print("\nno regressions beyond "
              f"{args.threshold:.0f}% threshold")


if __name__ == "__main__":
    main()
