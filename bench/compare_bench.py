#!/usr/bin/env python3
"""Compare two kernel-bench JSON-line files and flag regressions.

Input files are what `bench_micro --json=PATH` (and any bench run with
MCS_BENCH_OUT=PATH) produce: one JSON object per line, each carrying a
"bench" name plus metrics.  Throughput ("items_per_sec", higher is better)
is preferred for the comparison; benches without it fall back to "seconds"
(lower is better).  When a file holds several lines for one bench (appended
runs), the best value wins.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold PCT] [--warn-only]

Exits 1 when any bench regresses by more than the threshold (default 10%),
unless --warn-only is given (informational mode, e.g. CI runners whose
hardware differs from the committed baseline's).
"""

import argparse
import json
import sys


def load(path):
    """bench key -> (metric_name, best_value).

    Thread-scaling entries (lines carrying a "threads" field, e.g. the
    `bench_micro --json-par` suite) are keyed "name@tN" so the regression
    check compares equal thread counts against each other.
    """
    best = {}
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: not a JSON line: {e}")
            name = obj.get("bench")
            if not name:
                continue
            if "threads" in obj:
                name = f"{name}@t{obj['threads']}"
            if "items_per_sec" in obj:
                metric, value, higher_better = ("items_per_sec",
                                                float(obj["items_per_sec"]),
                                                True)
            elif "seconds" in obj:
                metric, value, higher_better = ("seconds",
                                                float(obj["seconds"]), False)
            else:
                continue
            prev = best.get(name)
            if prev is None or (value > prev[1]) == higher_better:
                best[name] = (metric, value, higher_better)
    return best


def report_speedup(benches, label):
    """Speedup-vs-1-thread table for every thread-scaling bench group."""
    groups = {}
    for key, (metric, value, _) in benches.items():
        if "@t" not in key or metric != "seconds":
            continue
        name, threads = key.rsplit("@t", 1)
        try:
            groups.setdefault(name, {})[int(threads)] = value
        except ValueError:
            continue
    printed_header = False
    for name in sorted(groups):
        by_threads = groups[name]
        if 1 not in by_threads or by_threads[1] <= 0:
            continue
        if not printed_header:
            print(f"\nthread scaling ({label}):")
            print(f"{'bench':<24} " +
                  " ".join(f"{f't={t}':>9}" for t in sorted(by_threads)))
            printed_header = True
        base = by_threads[1]
        cells = " ".join(f"{base / by_threads[t]:>8.2f}x"
                         if by_threads[t] > 0 else f"{'-':>9}"
                         for t in sorted(by_threads))
        print(f"{name:<24} {cells}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        sys.exit(f"{args.baseline}: no benches found")
    if not cur:
        sys.exit(f"{args.current}: no benches found")

    regressions = []
    print(f"{'bench':<24} {'metric':<14} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<24} {'(new)':<14} {'-':>12} "
                  f"{cur[name][1]:>12.4g} {'-':>8}")
            continue
        if name not in cur:
            print(f"{name:<24} {'(missing)':<14} {base[name][1]:>12.4g} "
                  f"{'-':>12} {'-':>8}")
            regressions.append((name, "missing from current run"))
            continue
        metric, b, higher_better = base[name]
        c = cur[name][1]
        if b == 0:
            continue
        # Positive delta = improvement under either metric orientation.
        delta = (c - b) / b * 100.0 if higher_better else (b - c) / b * 100.0
        mark = ""
        if delta < -args.threshold:
            mark = "  <-- REGRESSION"
            regressions.append((name, f"{-delta:.1f}% slower"))
        print(f"{name:<24} {metric:<14} {b:>12.4g} {c:>12.4g} "
              f"{delta:>+7.1f}%{mark}")

    report_speedup(cur, "current run")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        if not args.warn_only:
            sys.exit(1)
        print("(--warn-only: exiting 0)", file=sys.stderr)
    else:
        print("\nno regressions beyond "
              f"{args.threshold:.0f}% threshold")


if __name__ == "__main__":
    main()
