/// Microbenchmarks for the core kernels: structural hashing, truth-table
/// ops, NPN canonicalization, cut enumeration, random simulation, SAT
/// solving, MCH construction and both mappers.
///
/// Two modes:
///   - `bench_micro` (google-benchmark, when the library is available):
///     the statistical microbench suite, incl. --benchmark_min_time etc.
///   - `bench_micro --json[=PATH]`: the perf-baseline kernel suite -- a
///     fixed set of hand-timed kernels (best of N repetitions) emitted as
///     one JSON object per line (see bench_util::JsonLine), appended to
///     PATH (default BENCH_kernel.json).  This output is the input of
///     bench/compare_bench.py and the committed perf trajectory; it also
///     serves as the fallback main when google-benchmark is absent.
///     `--json-par[=PATH]` and `--json-sweep[=PATH]` run the thread-scaling
///     suites (parallel drivers / the fraig engine) the same way.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/common/rng.hpp"
#include "mcs/cut/enumeration.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "mcs/sweep/sweep.hpp"
#include "mcs/tt/npn.hpp"

namespace {

using namespace mcs;

const Network& medium_circuit() {
  static const Network net = expand_to_aig(circuits::multiplier(8));
  return net;
}

const Network& large_circuit() {
  static const Network net = expand_to_aig(circuits::multiplier(64));
  return net;
}

// --- perf-baseline kernel suite ---------------------------------------------

/// Times fn() `reps` times and returns the best (minimum) seconds.
template <typename Fn>
double best_of(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    bench::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

void run_kernel_suite(const char* path) {
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(stderr, "bench_micro: kernel suite -> %s\n", path);

  {
    // Steady-state per-pass enumeration (reset + run), exactly how the
    // mappers drive the kernel across their recovery passes.
    const Network& net = large_circuit();
    const auto order = topo_order(net);
    CutEnumerator cuts(net, {.cut_size = 6, .cut_limit = 8});
    std::size_t cuts_total = 0;
    bench::MetricsWindow window;
    const double s = best_of(5, [&] {
      cuts.reset();
      cuts.run(order);
      cuts_total = cuts.total_cuts();
    });
    bench::JsonLine("cut_enum_mult64_k6", out)
        .field("seconds", s)
        .field("gates", net.num_gates())
        .field("cuts", cuts_total)
        .field("items_per_sec", static_cast<double>(net.num_gates()) / s)
        .object("metrics", window.delta_json());
  }
  {
    // Batched: one run is ~0.4 ms, too short for a stable reading.
    constexpr int kBatch = 50;
    const Network& net = medium_circuit();
    const auto order = topo_order(net);
    CutEnumerator cuts(net, {.cut_size = 4, .cut_limit = 8});
    const double s = best_of(5, [&] {
      for (int i = 0; i < kBatch; ++i) {
        cuts.reset();
        cuts.run(order);
      }
    }) / kBatch;
    bench::JsonLine("cut_enum_mult8_k4", out)
        .field("seconds", s)
        .field("gates", net.num_gates())
        .field("items_per_sec", static_cast<double>(net.num_gates()) / s);
  }
  {
    constexpr int kOps = 500000;
    bench::MetricsWindow window;
    const double s = best_of(7, [&] {
      Network net;
      Rng rng(7);
      std::vector<Signal> pool;
      for (int i = 0; i < 64; ++i) pool.push_back(net.create_pi());
      for (int i = 0; i < kOps; ++i) {
        const Signal a = pool[rng.next_below(pool.size())] ^ rng.next_bool();
        const Signal b = pool[rng.next_below(pool.size())] ^ rng.next_bool();
        pool.push_back(net.create_and(a, b));
      }
    });
    bench::JsonLine("strash_insert", out)
        .field("seconds", s)
        .field("items_per_sec", static_cast<double>(kOps) / s)
        .object("metrics", window.delta_json());
  }
  {
    // Hit-path lookups: every gate of the large circuit resolved again
    // (batched for a stable reading).
    constexpr int kBatch = 20;
    const Network& net = large_circuit();
    std::size_t hits = 0;
    bench::MetricsWindow window;
    const double s = best_of(5, [&] {
      hits = 0;
      for (int i = 0; i < kBatch; ++i) {
        for (NodeId n = 0; n < net.size(); ++n) {
          if (!net.is_gate(n)) continue;
          const Node& nd = net.node(n);
          hits += net.lookup_gate(nd.type, nd.fanin) == n;
        }
      }
    }) / kBatch;
    bench::JsonLine("strash_lookup", out)
        .field("seconds", s)
        .field("hits", hits / kBatch)
        .field("items_per_sec",
               static_cast<double>(hits / kBatch) / s)
        .object("metrics", window.delta_json());
  }
  {
    const Network& net = medium_circuit();
    std::size_t luts = 0;
    const double s = best_of(5, [&] {
      LutMapStats stats;
      const LutNetwork l = lut_map(net, {}, &stats);
      luts = l.size();
    });
    bench::JsonLine("lut_map_mult8", out)
        .field("seconds", s)
        .field("luts", luts)
        .field("items_per_sec", static_cast<double>(net.num_gates()) / s);
  }
  {
    const Network& net = medium_circuit();
    const TechLibrary lib = TechLibrary::asap7_mini();
    const double s = best_of(2, [&] {
      AsicMapParams p;
      asic_map(net, lib, p);
    });
    bench::JsonLine("asic_map_mult8", out)
        .field("seconds", s)
        .field("items_per_sec", static_cast<double>(net.num_gates()) / s);
  }
  {
    const Network& net = medium_circuit();
    const double s = best_of(2, [&] {
      MchParams params;
      params.candidate_basis = GateBasis::xmg();
      build_mch(net, params);
    });
    bench::JsonLine("mch_mult8", out)
        .field("seconds", s)
        .field("items_per_sec", static_cast<double>(net.num_gates()) / s);
  }
  std::fclose(out);
}

// --- par_scaling suite ------------------------------------------------------

/// Thread-scaling suite over the end-to-end parallel paths: par_optimize,
/// par_mch+par_map_lut, CEC and random simulation on the 64-bit multiplier
/// at 1/2/4/8 threads.  One JSON line per (bench, threads) pair carrying
/// seconds, speedup vs the run's own 1-thread time, a determinism check
/// against the 1-thread result, and the machine's hardware concurrency
/// (committed baselines from small machines are flagged, not trusted).
/// MCS_PAR_BENCH_BITS shrinks the multiplier for CI smoke runs.
void run_par_suite(const char* path) {
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot open %s\n", path);
    std::exit(1);
  }
  int bits = 64;
  if (const char* env = std::getenv("MCS_PAR_BENCH_BITS")) {
    const int v = std::atoi(env);
    if (v >= 4 && v <= 128) bits = v;
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(stderr,
               "bench_micro: par_scaling suite (multiplier %d, hardware "
               "concurrency %zu) -> %s\n",
               bits, hw, path);
  const Network net = expand_to_aig(circuits::multiplier(bits));
  const std::string circuit = "multiplier" + std::to_string(bits);
  const int thread_counts[] = {1, 2, 4, 8};

  auto emit = [&](const char* bench, int threads, double seconds,
                  double base_seconds, bool deterministic) {
    bench::JsonLine(bench, out)
        .field("circuit", circuit)
        .field("threads", threads)
        .field("seconds", seconds)
        .field("speedup", seconds > 0.0 ? base_seconds / seconds : 0.0)
        .field("deterministic", deterministic)
        .field("hardware_threads", static_cast<std::size_t>(hw));
  };

  {
    Network reference;
    double base = 0.0;
    for (const int t : thread_counts) {
      ParParams params;
      params.num_threads = t;
      params.partition.max_gates = 2000;
      bench::Timer timer;
      const Network result = par_optimize(net, GateBasis::xmg(), 1, params);
      const double s = timer.seconds();
      if (t == 1) {
        base = s;
        reference = result;
      }
      emit("par_opt_mult", t, s, base, structurally_identical(result, reference));
    }
  }
  {
    LutNetwork reference;
    double base = 0.0;
    for (const int t : thread_counts) {
      ParParams params;
      params.num_threads = t;
      params.partition.max_gates = 2000;
      bench::Timer timer;
      const LutNetwork luts = par_map_lut(net, {}, params);
      const double s = timer.seconds();
      if (t == 1) {
        base = s;
        reference = luts;
      }
      emit("par_map_lut_mult", t, s, base, luts == reference);
    }
  }
  {
    // Parallel CEC: ripple vs balanced adder, the classic tractable miter
    // (multiplier miters are SAT-hard regardless of the harness).  Stage 1
    // is the level-blocked parallel simulation, stage 2 the per-PO-batch
    // cone-restricted miters; 4*bits+1 POs -> dozens of batches.
    const Network ripple = expand_to_aig(circuits::adder(4 * bits));
    const Network balanced = balance(ripple);
    const std::string cec_circuit = "adder" + std::to_string(4 * bits);
    double base = 0.0;
    CecResult reference = CecResult::kUnknown;
    for (const int t : thread_counts) {
      CecOptions opts;
      opts.num_threads = t;
      CecResult r = CecResult::kUnknown;
      const double s =
          best_of(2, [&] { r = check_equivalence(ripple, balanced, opts); });
      if (t == 1) {
        base = s;
        reference = r;
      }
      bench::JsonLine("cec_adder", out)
          .field("circuit", cec_circuit)
          .field("threads", t)
          .field("seconds", s)
          .field("speedup", s > 0.0 ? base / s : 0.0)
          .field("deterministic", r == reference)
          .field("equivalent", r == CecResult::kEquivalent)
          .field("hardware_threads", static_cast<std::size_t>(hw));
    }
  }
  {
    // The raw level-blocked simulation sweep (64 words per node).
    std::uint64_t ref_sig = 0;
    double base = 0.0;
    for (const int t : thread_counts) {
      std::uint64_t sig = 0;
      const double s = best_of(3, [&] {
        RandomSimulation sim(net, 64, 0xbeef, t);
        sig = sim.signature(net.po_at(net.num_pos() - 1));
      });
      if (t == 1) {
        base = s;
        ref_sig = sig;
      }
      emit("sim_mult", t, s, base, sig == ref_sig);
    }
  }
  std::fclose(out);
}

// --- sweep scaling suite ----------------------------------------------------

/// Thread-scaling suite over the SAT-sweeping engine: fraig on the 64-bit
/// multiplier at 1/2/4/8 threads (one JSON line each, with speedup vs the
/// run's own 1-thread time and a bit-identity determinism check) plus the
/// legacy `sweep()` entry point as the serial reference row, and the
/// proof-heavy workload -- a 256-bit AIG-vs-XMG adder miter whose hundreds
/// of locally-provable pairs must collapse every PO to constant 0.
/// MCS_SWEEP_BENCH_BITS shrinks the multiplier for CI smoke runs.
void run_sweep_suite(const char* path) {
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot open %s\n", path);
    std::exit(1);
  }
  int bits = 64;
  if (const char* env = std::getenv("MCS_SWEEP_BENCH_BITS")) {
    const int v = std::atoi(env);
    if (v >= 4 && v <= 128) bits = v;
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(stderr,
               "bench_micro: sweep scaling suite (multiplier %d, hardware "
               "concurrency %zu) -> %s\n",
               bits, hw, path);
  const Network net = expand_to_aig(circuits::multiplier(bits));
  const std::string circuit = "multiplier" + std::to_string(bits);

  // The legacy entry point (sweep() delegates to the engine at its classic
  // defaults): the reference both for time and for the gate-count
  // acceptance bar (fraig must never end up worse).
  std::size_t legacy_gates = 0;
  {
    double s = 0.0;
    bench::MetricsWindow window;
    {
      bench::Timer timer;
      const Network legacy = sweep(net);
      s = timer.seconds();
      legacy_gates = legacy.num_gates();
    }
    bench::JsonLine("sweep_legacy_mult", out)
        .field("circuit", circuit)
        .field("seconds", s)
        .field("gates", legacy_gates)
        .field("hardware_threads", static_cast<std::size_t>(hw))
        .object("metrics", window.delta_json());
  }

  Network reference;
  double base = 0.0;
  for (const int t : {1, 2, 4, 8}) {
    FraigParams params;
    params.num_threads = t;
    FraigStats stats;
    bench::MetricsWindow window;
    bench::Timer timer;
    const Network result = fraig(net, params, &stats);
    const double s = timer.seconds();
    if (t == 1) {
      base = s;
      reference = result;
    }
    bench::JsonLine("fraig_mult", out)
        .field("circuit", circuit)
        .field("threads", t)
        .field("seconds", s)
        .field("speedup", s > 0.0 ? base / s : 0.0)
        .field("deterministic", structurally_identical(result, reference))
        .field("gates", result.num_gates())
        .field("not_worse_than_legacy", result.num_gates() <= legacy_gates)
        .field("proven", stats.num_proven)
        .field("rounds", stats.num_rounds)
        .field("hardware_threads", static_cast<std::size_t>(hw))
        .object("metrics", window.delta_json());
  }

  // The proof-heavy workload: both 256-bit adder forms in one network,
  // POs pairwise XORed.  Every carry/sum pair is locally provable, so the
  // engine cascades through hundreds of miters and every PO collapses to
  // constant 0 (checked per row as `collapsed`).
  {
    const Network xmg = circuits::adder(256);
    const Network aig = expand_to_aig(xmg);
    Network miter;
    std::vector<Signal> pis;
    for (std::size_t i = 0; i < aig.num_pis(); ++i) {
      pis.push_back(miter.create_pi());
    }
    for (std::size_t i = 0; i < aig.num_pos(); ++i) {
      const Signal pa = copy_cone(aig, miter, aig.po_at(i), pis);
      const Signal pb = copy_cone(xmg, miter, xmg.po_at(i), pis);
      miter.create_po(miter.create_xor(pa, pb));
    }
    Network miter_reference;
    double miter_base = 0.0;
    for (const int t : {1, 2, 4, 8}) {
      FraigParams params;
      params.num_threads = t;
      FraigStats stats;
      bench::MetricsWindow window;
      bench::Timer timer;
      const Network result = fraig(miter, params, &stats);
      const double s = timer.seconds();
      if (t == 1) {
        miter_base = s;
        miter_reference = result;
      }
      bench::JsonLine("fraig_adder_miter", out)
          .field("circuit", std::string("adder256_aig_vs_xmg"))
          .field("threads", t)
          .field("seconds", s)
          .field("speedup", s > 0.0 ? miter_base / s : 0.0)
          .field("deterministic",
                 structurally_identical(result, miter_reference))
          .field("collapsed", result.num_gates() == 0)
          .field("proven", stats.num_proven)
          .field("hardware_threads", static_cast<std::size_t>(hw))
          .object("metrics", window.delta_json());
    }
  }
  std::fclose(out);
}

/// Returns the --json[=PATH] argument value, or nullptr when absent.
const char* json_mode_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return "BENCH_kernel.json";
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

/// Returns the --json-par[=PATH] argument value, or nullptr when absent.
const char* json_par_mode_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-par") == 0) return "BENCH_par.json";
    if (std::strncmp(argv[i], "--json-par=", 11) == 0) return argv[i] + 11;
  }
  return nullptr;
}

/// Returns the --json-sweep[=PATH] argument value, or nullptr when absent.
const char* json_sweep_mode_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-sweep") == 0) return "BENCH_sweep.json";
    if (std::strncmp(argv[i], "--json-sweep=", 13) == 0) return argv[i] + 13;
  }
  return nullptr;
}

}  // namespace

// --- google-benchmark suite -------------------------------------------------

#ifdef MCS_HAVE_GBENCH

#include <benchmark/benchmark.h>

namespace {

void BM_Strash(benchmark::State& state) {
  for (auto _ : state) {
    Network net;
    Rng rng(7);
    std::vector<Signal> pool;
    for (int i = 0; i < 16; ++i) pool.push_back(net.create_pi());
    for (int i = 0; i < 2000; ++i) {
      const Signal a = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      const Signal b = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      pool.push_back(net.create_and(a, b));
    }
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Strash);

void BM_StrashLookup(benchmark::State& state) {
  const Network& net = medium_circuit();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (NodeId n = 0; n < net.size(); ++n) {
      if (!net.is_gate(n)) continue;
      const Node& nd = net.node(n);
      hits += net.lookup_gate(nd.type, nd.fanin) == n;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_StrashLookup);

void BM_NpnCanonExact4(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        npn_canonicalize_exact(tt6_replicate(rng.next(), 4), 4));
  }
}
BENCHMARK(BM_NpnCanonExact4);

void BM_NpnCanonCached(benchmark::State& state) {
  Npn4Cache cache;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.canonicalize(tt6_replicate(rng.next(), 4)));
  }
}
BENCHMARK(BM_NpnCanonCached);

void BM_CutEnumeration(benchmark::State& state) {
  const Network& net = medium_circuit();
  const auto order = topo_order(net);
  CutEnumerator cuts(net, {.cut_size = static_cast<int>(state.range(0)),
                           .cut_limit = 8});
  for (auto _ : state) {
    cuts.reset();
    cuts.run(order);
    benchmark::DoNotOptimize(cuts.total_cuts());
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_CutEnumeration)->Arg(4)->Arg(6);

void BM_CutEnumerationMult64(benchmark::State& state) {
  // The acceptance kernel of the arena/devirtualization work: k=6
  // enumeration over the 64-bit multiplier (~44k AIG gates), driven in the
  // steady state (reset + run per pass) like the mappers drive it.
  const Network& net = large_circuit();
  const auto order = topo_order(net);
  CutEnumerator cuts(net, {.cut_size = 6, .cut_limit = 8});
  for (auto _ : state) {
    cuts.reset();
    cuts.run(order);
    benchmark::DoNotOptimize(cuts.total_cuts());
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_CutEnumerationMult64);

void BM_RandomSimulation(benchmark::State& state) {
  const Network& net = medium_circuit();
  for (auto _ : state) {
    RandomSimulation sim(net, 16, 1234);
    benchmark::DoNotOptimize(sim.signature(net.po_at(0)));
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates() * 16);
}
BENCHMARK(BM_RandomSimulation);

void BM_SatCec(benchmark::State& state) {
  // Adder miters stay easy for CDCL; multiplier miters would not.
  const Network net = expand_to_aig(circuits::adder(16));
  const Network other = balance(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_equivalence(net, other));
  }
}
BENCHMARK(BM_SatCec);

void BM_MchConstruction(benchmark::State& state) {
  const Network& net = medium_circuit();
  for (auto _ : state) {
    MchParams params;
    params.candidate_basis = GateBasis::xmg();
    benchmark::DoNotOptimize(build_mch(net, params));
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_MchConstruction);

void BM_LutMap(benchmark::State& state) {
  const Network& net = medium_circuit();
  const bool with_choices = state.range(0) != 0;
  Network subject = net;
  if (with_choices) {
    MchParams params;
    params.candidate_basis = GateBasis::xmg();
    subject = build_mch(net, params);
  }
  for (auto _ : state) {
    LutMapParams p;
    p.use_choices = with_choices;
    benchmark::DoNotOptimize(lut_map(subject, p));
  }
}
BENCHMARK(BM_LutMap)->Arg(0)->Arg(1);

void BM_AsicMap(benchmark::State& state) {
  const Network& net = medium_circuit();
  const TechLibrary lib = TechLibrary::asap7_mini();
  for (auto _ : state) {
    AsicMapParams p;
    p.use_choices = false;
    benchmark::DoNotOptimize(asic_map(net, lib, p));
  }
}
BENCHMARK(BM_AsicMap);

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  if (const char* path = json_par_mode_path(argc, argv)) {
    run_par_suite(path);
    return 0;
  }
  if (const char* path = json_sweep_mode_path(argc, argv)) {
    run_sweep_suite(path);
    return 0;
  }
  if (const char* path = json_mode_path(argc, argv)) {
    run_kernel_suite(path);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#else  // !MCS_HAVE_GBENCH

int main(int argc, char** argv) {
  obs::init_from_env();
  if (const char* path = json_par_mode_path(argc, argv)) {
    run_par_suite(path);
    return 0;
  }
  if (const char* path = json_sweep_mode_path(argc, argv)) {
    run_sweep_suite(path);
    return 0;
  }
  const char* path = json_mode_path(argc, argv);
  run_kernel_suite(path != nullptr ? path : "BENCH_kernel.json");
  return 0;
}

#endif
