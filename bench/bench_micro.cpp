/// Microbenchmarks (google-benchmark) for the core kernels: structural
/// hashing, truth-table ops, NPN canonicalization, cut enumeration, random
/// simulation, SAT solving, MCH construction and both mappers.

#include <benchmark/benchmark.h>

#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/common/rng.hpp"
#include "mcs/cut/enumeration.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "mcs/tt/npn.hpp"

namespace {

using namespace mcs;

Network medium_circuit() {
  static const Network net = expand_to_aig(circuits::multiplier(8));
  return net;
}

void BM_Strash(benchmark::State& state) {
  for (auto _ : state) {
    Network net;
    Rng rng(7);
    std::vector<Signal> pool;
    for (int i = 0; i < 16; ++i) pool.push_back(net.create_pi());
    for (int i = 0; i < 2000; ++i) {
      const Signal a = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      const Signal b = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      pool.push_back(net.create_and(a, b));
    }
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Strash);

void BM_NpnCanonExact4(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        npn_canonicalize_exact(tt6_replicate(rng.next(), 4), 4));
  }
}
BENCHMARK(BM_NpnCanonExact4);

void BM_NpnCanonCached(benchmark::State& state) {
  Npn4Cache cache;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.canonicalize(tt6_replicate(rng.next(), 4)));
  }
}
BENCHMARK(BM_NpnCanonCached);

void BM_CutEnumeration(benchmark::State& state) {
  const Network net = medium_circuit();
  const auto order = topo_order(net);
  for (auto _ : state) {
    CutEnumerator cuts(net, {.cut_size = static_cast<int>(state.range(0)),
                             .cut_limit = 8});
    cuts.run(order);
    benchmark::DoNotOptimize(cuts.total_cuts());
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_CutEnumeration)->Arg(4)->Arg(6);

void BM_RandomSimulation(benchmark::State& state) {
  const Network net = medium_circuit();
  for (auto _ : state) {
    RandomSimulation sim(net, 16, 1234);
    benchmark::DoNotOptimize(sim.signature(net.po_at(0)));
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates() * 16);
}
BENCHMARK(BM_RandomSimulation);

void BM_SatCec(benchmark::State& state) {
  // Adder miters stay easy for CDCL; multiplier miters would not.
  const Network net = expand_to_aig(circuits::adder(16));
  const Network other = balance(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_equivalence(net, other));
  }
}
BENCHMARK(BM_SatCec);

void BM_MchConstruction(benchmark::State& state) {
  const Network net = medium_circuit();
  for (auto _ : state) {
    MchParams params;
    params.candidate_basis = GateBasis::xmg();
    benchmark::DoNotOptimize(build_mch(net, params));
  }
  state.SetItemsProcessed(state.iterations() * net.num_gates());
}
BENCHMARK(BM_MchConstruction);

void BM_LutMap(benchmark::State& state) {
  const Network net = medium_circuit();
  const bool with_choices = state.range(0) != 0;
  Network subject = net;
  if (with_choices) {
    MchParams params;
    params.candidate_basis = GateBasis::xmg();
    subject = build_mch(net, params);
  }
  for (auto _ : state) {
    LutMapParams p;
    p.use_choices = with_choices;
    benchmark::DoNotOptimize(lut_map(subject, p));
  }
}
BENCHMARK(BM_LutMap)->Arg(0)->Arg(1);

void BM_AsicMap(benchmark::State& state) {
  const Network net = medium_circuit();
  const TechLibrary lib = TechLibrary::asap7_mini();
  for (auto _ : state) {
    AsicMapParams p;
    p.use_choices = false;
    benchmark::DoNotOptimize(asic_map(net, lib, p));
  }
}
BENCHMARK(BM_AsicMap);

}  // namespace

BENCHMARK_MAIN();
