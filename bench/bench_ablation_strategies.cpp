/// Ablation B (DESIGN.md): the multi-strategy library of Algorithm 2.
///
/// The paper argues that *combining* synthesis strategies (NPN database,
/// SOP factoring, DSD, Shannon) enriches candidate diversity beyond any
/// single strategy.  This bench maps with MCH networks built from each
/// strategy alone and from the full multi-strategy library.

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

namespace {

StrategyLibrary single(int which) {
  StrategyLibrary lib;
  switch (which) {
    case 0:
      lib.add(std::make_unique<NpnStrategy>(NpnDatabase::Objective::kLevel));
      break;
    case 1:
      lib.add(std::make_unique<SopStrategy>());
      break;
    case 2:
      lib.add(std::make_unique<DsdStrategy>());
      break;
    default:
      lib.add(std::make_unique<ShannonStrategy>());
      break;
  }
  return lib;
}

}  // namespace

int main() {
  const double scale = bench::suite_scale();
  std::printf("=== Ablation B: synthesis-strategy mix of Algorithm 2 (suite "
              "scale %.2f) ===\n\n", scale);

  const char* names[] = {"adder", "bar", "max", "sin", "priority", "voter"};
  std::vector<circuits::BenchmarkCircuit> cases;
  for (auto& bc : circuits::epfl_suite(scale)) {
    for (const char* n : names) {
      if (bc.name == n) cases.push_back(std::move(bc));
    }
  }

  const char* configs[] = {"npn-only", "sop-only", "dsd-only",
                           "shannon-only", "multi-strategy"};
  std::printf("%-10s", "circuit");
  for (const char* c : configs) std::printf(" | %-14s LUT/lvl", c);
  std::printf("\n");

  std::vector<std::vector<double>> luts(5), levels(5);
  for (const auto& bc : cases) {
    const Network opt =
        compress2rs_like(expand_to_aig(bc.net), GateBasis::aig(), 2);
    std::printf("%-10s", bc.name.c_str());
    for (int cfg = 0; cfg < 5; ++cfg) {
      MchParams mch;
      mch.candidate_basis = GateBasis::xmg();
      mch.critical_ratio = 0.8;
      StrategyLibrary lib;
      if (cfg < 4) {
        lib = single(cfg);
        mch.level_lib = &lib;
        mch.area_lib = &lib;
      }  // cfg == 4: defaults = full multi-strategy bundles
      const Network net = build_mch(opt, mch);
      LutMapParams p;
      p.lut_size = 6;
      p.objective = LutMapParams::Objective::kArea;
      const auto m = lut_map(net, p);
      luts[cfg].push_back(static_cast<double>(m.size()));
      levels[cfg].push_back(static_cast<double>(std::max(1u, m.depth())));
      std::printf(" | %14zu %5u ", m.size(), m.depth());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%-10s", "geomean");
  for (int cfg = 0; cfg < 5; ++cfg) {
    std::printf(" | %14.1f %5.1f ", bench::geomean(luts[cfg]),
                bench::geomean(levels[cfg]));
  }
  std::printf("\n\nExpected shape: the multi-strategy library matches or "
              "beats every single-strategy\nconfiguration (more diverse "
              "candidates can only widen the mapper's choice).\n");
  return 0;
}
