#!/usr/bin/env python3
"""Validate a multicore scaling run and promote it to baseline.

The committed `BENCH_par.json` baseline should come from a machine with
real parallelism; the repo's fallback `BENCH_par_1core.json` was measured
in a 1-core container where speedups are definitionally ~1.0x and say
nothing about scaling health.  This script gates the promotion: it checks
that a candidate run (from `bench_micro --json-par=...` on a multicore
runner, e.g. the CI artifact) is actually fit to be the reference, then
writes it to the baseline path.

The sweep-scaling baseline rides the same gate: point `--reference` and
`--out` at BENCH_sweep.json for a `bench_micro --json-sweep=...` run.
Sweep suites mix threaded series with single-config rows (the legacy
engine reference has no "threads" field); such rows are keyed on the
bench name alone and skip the thread-series checks.

Checks, all hard failures:
  - every row parses and carries bench/seconds/hardware_threads,
  - hardware_threads > 1 and identical across rows (one machine, one run),
  - the (bench, threads) set covers the reference row set (nothing
    silently dropped vs the current baseline / 1-core fallback),
  - "deterministic" is true wherever present (a nondeterministic run must
    never become the comparison anchor),
  - every bench with a thread series contains threads=1 (speedups have an
    anchor) and speedup values are self-consistent with seconds.

Usage:
  promote_baseline.py CANDIDATE.json [--reference BENCH_par_1core.json]
                      [--out BENCH_par.json] [--check-only]

`--check-only` validates without writing (the CI gate).  On promotion the
rows are copied verbatim -- this script never edits measurements.
"""

import argparse
import json
import sys


def load_rows(path):
    rows = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: not a JSON line: {e}")
            rows.append((line_no, obj))
    if not rows:
        sys.exit(f"{path}: no rows")
    return rows


def key_set(rows):
    keys = set()
    for _, obj in rows:
        if "bench" in obj:
            # Single-config rows (no thread series) key on the bench alone.
            keys.add((obj["bench"], obj.get("threads")))
    return keys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--reference", default="BENCH_par_1core.json",
                    help="row-set reference (default: the 1-core fallback)")
    ap.add_argument("--out", default="BENCH_par.json")
    ap.add_argument("--check-only", action="store_true",
                    help="validate without writing the baseline")
    args = ap.parse_args()

    rows = load_rows(args.candidate)
    problems = []

    hw = set()
    for line_no, obj in rows:
        where = f"{args.candidate}:{line_no}"
        for field in ("bench", "seconds", "hardware_threads"):
            if field not in obj:
                problems.append(f"{where}: missing \"{field}\"")
        if obj.get("deterministic") is False:
            problems.append(f"{where}: nondeterministic row")
        if "hardware_threads" in obj:
            hw.add(obj["hardware_threads"])

    if len(hw) > 1:
        problems.append(f"mixed hardware_threads {sorted(hw)}: "
                        "rows are not from one machine/run")
    elif hw and next(iter(hw)) <= 1:
        problems.append(f"hardware_threads={next(iter(hw))}: a 1-core run "
                        "cannot become the multicore baseline")

    # Per-bench series checks: a threads=1 anchor and consistent speedups.
    series = {}
    for line_no, obj in rows:
        if "bench" in obj and "threads" in obj and "seconds" in obj:
            series.setdefault(obj["bench"], {})[obj["threads"]] = \
                (line_no, obj)
    for bench, by_threads in sorted(series.items()):
        if 1 not in by_threads:
            problems.append(f"{bench}: no threads=1 anchor row")
            continue
        base_seconds = by_threads[1][1]["seconds"]
        for threads, (line_no, obj) in sorted(by_threads.items()):
            if "speedup" not in obj or obj["seconds"] <= 0:
                continue
            expect = base_seconds / obj["seconds"]
            if abs(expect - obj["speedup"]) > 0.05 * max(expect, 1e-9):
                problems.append(
                    f"{args.candidate}:{line_no}: {bench}@t{threads} "
                    f"speedup {obj['speedup']:.3f} inconsistent with "
                    f"seconds (expect {expect:.3f})")

    try:
        missing = key_set(load_rows(args.reference)) - key_set(rows)
        if missing:
            problems.append(
                "missing rows vs reference: " +
                ", ".join(f"{b}@t{t}" for b, t in sorted(missing)))
    except SystemExit:
        raise
    except OSError as e:
        problems.append(f"cannot read reference {args.reference}: {e}")

    if problems:
        print(f"NOT promotable ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        sys.exit(1)

    n_benches = len(series)
    hw_n = next(iter(hw)) if hw else "?"
    print(f"candidate OK: {len(rows)} rows, {n_benches} benches, "
          f"hardware_threads={hw_n}")
    if args.check_only:
        return
    with open(args.candidate) as src, open(args.out, "w") as dst:
        dst.write(src.read())
    print(f"promoted {args.candidate} -> {args.out}")


if __name__ == "__main__":
    main()
