/// \file bench_flow.cpp
/// \brief The paper flow (optimize -> mch -> map_lut -> cec) as a flow
/// spec, run over a slice of the generated suite through the shared
/// run_flow() entry point.  Demonstrates that a bench is now one spec
/// string instead of a hand-wired pass sequence, and emits one JSON line
/// per stage (see bench_util::emit_flow_report).
///
/// Knobs:
///   MCS_FLOW_SPEC      override the per-circuit spec; "%s" is replaced by
///                      the circuit's `gen` stage (default paper flow)
///   MCS_FLOW_THREADS   > 1 switches to the partition-parallel variant
///                      (popt / pmch / pmap_lut) with that worker count
///   MCS_FLOW_ONLY      run just the named circuit (e.g. "multiplier") --
///                      pairs with MCS_FLOW_SPEC for single-flow timing
///   MCS_FLOW_REPEAT    run the suite N times (default 1) and print the
///                      summed flow seconds -- the stable-timing loop of
///                      the obs-overhead check (enabled+sampler build vs
///                      -DMCS_OBS_DISABLE must stay within a few percent)
///   MCS_FLOW_SAMPLER   > 0 runs the whole suite with the telemetry
///                      sampler live at that interval in ms (ring of 120),
///                      mirroring a serving deployment; no-op stub under
///                      MCS_OBS_DISABLE

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mcs/flow/flow.hpp"

using namespace mcs;

namespace {

struct Circuit {
  const char* name;
  const char* gen;  ///< the flow `gen` stage (kept small for CI runs)
};

constexpr Circuit kCircuits[] = {
    {"adder", "gen:adder,bits=32"},
    {"bar", "gen:bar,bits=16"},
    {"multiplier", "gen:multiplier,bits=8"},
    {"dec", "gen:dec,bits=5"},
    {"ctrl", "gen:ctrl"},
};

}  // namespace

int main() {
  obs::init_from_env();
  const char* spec_env = std::getenv("MCS_FLOW_SPEC");
  int threads = 1;
  if (const char* t = std::getenv("MCS_FLOW_THREADS")) {
    threads = std::atoi(t);
  }
  const char* only = std::getenv("MCS_FLOW_ONLY");
  int repeat = 1;
  if (const char* r = std::getenv("MCS_FLOW_REPEAT")) {
    repeat = std::atoi(r);
    if (repeat < 1) repeat = 1;
  }
  if (const char* s = std::getenv("MCS_FLOW_SAMPLER")) {
    const int interval_ms = std::atoi(s);
    if (interval_ms > 0) {
      obs::sampler_start(static_cast<unsigned>(interval_ms), 120);
    }
  }

  const std::string serial_tail =
      "; compress2rs:rounds=2; mch:basis=xmg,ratio=0.9; map_lut:k=6; cec";
  const std::string parallel_tail =
      "; popt:rounds=2; pmch:basis=xmg,ratio=0.9; pmap_lut:k=6; cec";

  bool all_ok = true;
  double total_seconds = 0.0;
  for (int iter = 0; iter < repeat; ++iter) {
    for (const Circuit& circuit : kCircuits) {
      if (only && circuit.name != std::string(only)) continue;
      std::string spec;
      if (spec_env) {
        spec = spec_env;
        const std::size_t hole = spec.find("%s");
        if (hole != std::string::npos) {
          spec.replace(hole, 2, circuit.gen);
        }
      } else {
        spec = std::string(circuit.gen) +
               (threads > 1 ? parallel_tail : serial_tail);
      }

      flow::FlowContext ctx;
      ctx.par.num_threads = threads;
      const flow::FlowReport report = flow::run_flow(spec, ctx);
      if (iter == 0) {
        bench::emit_flow_report("flow", circuit.name, report);
      }
      all_ok = all_ok && report.ok;
      total_seconds += report.total_seconds;
    }
  }
  if (repeat > 1) {
    std::fprintf(stderr, "bench_flow: %d iterations, %.3f s summed flow time\n",
                 repeat, total_seconds);
  }
  obs::sampler_stop();
  return all_ok ? 0 : 1;
}
