/// \file bench_flow.cpp
/// \brief The paper flow (optimize -> mch -> map_lut -> cec) as a flow
/// spec, run over a slice of the generated suite through the shared
/// run_flow() entry point.  Demonstrates that a bench is now one spec
/// string instead of a hand-wired pass sequence, and emits one JSON line
/// per stage (see bench_util::emit_flow_report).
///
/// Knobs:
///   MCS_FLOW_SPEC      override the per-circuit spec; "%s" is replaced by
///                      the circuit's `gen` stage (default paper flow)
///   MCS_FLOW_THREADS   > 1 switches to the partition-parallel variant
///                      (popt / pmch / pmap_lut) with that worker count

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mcs/flow/flow.hpp"

using namespace mcs;

namespace {

struct Circuit {
  const char* name;
  const char* gen;  ///< the flow `gen` stage (kept small for CI runs)
};

constexpr Circuit kCircuits[] = {
    {"adder", "gen:adder,bits=32"},
    {"bar", "gen:bar,bits=16"},
    {"multiplier", "gen:multiplier,bits=8"},
    {"dec", "gen:dec,bits=5"},
    {"ctrl", "gen:ctrl"},
};

}  // namespace

int main() {
  obs::init_from_env();
  const char* spec_env = std::getenv("MCS_FLOW_SPEC");
  int threads = 1;
  if (const char* t = std::getenv("MCS_FLOW_THREADS")) {
    threads = std::atoi(t);
  }

  const std::string serial_tail =
      "; compress2rs:rounds=2; mch:basis=xmg,ratio=0.9; map_lut:k=6; cec";
  const std::string parallel_tail =
      "; popt:rounds=2; pmch:basis=xmg,ratio=0.9; pmap_lut:k=6; cec";

  bool all_ok = true;
  for (const Circuit& circuit : kCircuits) {
    std::string spec;
    if (spec_env) {
      spec = spec_env;
      const std::size_t hole = spec.find("%s");
      if (hole != std::string::npos) {
        spec.replace(hole, 2, circuit.gen);
      }
    } else {
      spec = std::string(circuit.gen) +
             (threads > 1 ? parallel_tail : serial_tail);
    }

    flow::FlowContext ctx;
    ctx.par.num_threads = threads;
    const flow::FlowReport report = flow::run_flow(spec, ctx);
    bench::emit_flow_report("flow", circuit.name, report);
    all_ok = all_ok && report.ok;
  }
  return all_ok ? 0 : 1;
}
