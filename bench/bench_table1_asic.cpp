/// Reproduces Table I of the paper: ASIC technology mapping of the 20
/// EPFL-analogue circuits under six flows:
///
///   F1  baseline delay-oriented mapping ("&nf")
///   F2  DCH structural choices + delay mapping ("&dch -m; &nf")
///   F3  DCH + area-oriented mapping ("dch; map -a")
///   F4  MCH balanced       (AIG candidates, r = 0.9, balanced mapping)
///   F5  MCH delay-oriented (XAG+AIG mix, wide critical range, delay map)
///   F6  MCH area-oriented  (XMG+AIG mix, area map)
///
/// Inputs are first optimized with the compress2rs-like script, as in the
/// paper.  Expected shape: F4 beats F1 on both area and delay geomean; F5
/// gives the largest delay gain at an area cost; F6 the largest area gain
/// at a delay cost; DCH's gains are smaller than MCH's.

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

namespace {

struct Result {
  double area = 0.0;
  double delay = 0.0;
  double time = 0.0;
  bool ok = true;
};

struct Flow {
  const char* name;
  std::function<Result(const Network& opt, const Network& original,
                       const TechLibrary& lib)>
      run;
};

Result map_and_check(const Network& subject, const Network& original,
                     const TechLibrary& lib, const AsicMapParams& params,
                     double prep_seconds) {
  bench::Timer t;
  const CellNetlist netlist = asic_map(subject, lib, params);
  Result r;
  r.area = netlist.area;
  r.delay = netlist.delay;
  r.time = prep_seconds + t.seconds();
  r.ok = bench::sim_check(original, netlist);
  return r;
}

}  // namespace

int main() {
  const double scale = bench::suite_scale();
  std::printf("=== Table I: ASIC technology mapping (ASAP7-mini, suite "
              "scale %.2f) ===\n\n", scale);
  const TechLibrary lib = TechLibrary::asap7_mini();

  std::vector<Flow> flows;
  flows.push_back({"F1 &nf (delay)", [](const Network& opt,
                                        const Network& orig,
                                        const TechLibrary& l) {
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kDelay;
    p.use_choices = false;
    return map_and_check(opt, orig, l, p, 0.0);
  }});
  flows.push_back({"F2 dch;&nf", [](const Network& opt, const Network& orig,
                                    const TechLibrary& l) {
    bench::Timer prep;
    const Network dch = build_dch({opt, balance(opt), rewrite(opt)});
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kDelay;
    return map_and_check(dch, orig, l, p, prep.seconds());
  }});
  flows.push_back({"F3 dch;map-a", [](const Network& opt,
                                      const Network& orig,
                                      const TechLibrary& l) {
    bench::Timer prep;
    const Network dch = build_dch({opt, balance(opt), rewrite(opt)});
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kArea;
    return map_and_check(dch, orig, l, p, prep.seconds());
  }});
  flows.push_back({"F4 MCH bal", [](const Network& opt, const Network& orig,
                                    const TechLibrary& l) {
    bench::Timer prep;
    MchParams mch;
    mch.candidate_basis = GateBasis::xmg();
    mch.critical_ratio = 0.9;
    const Network net = build_mch(opt, mch);
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kDelay;
    p.delay_relaxation = 0.08;  // balanced: bounded delay slack for area
    return map_and_check(net, orig, l, p, prep.seconds());
  }});
  flows.push_back({"F5 MCH delay", [](const Network& opt,
                                      const Network& orig,
                                      const TechLibrary& l) {
    bench::Timer prep;
    MchParams mch;
    mch.candidate_basis = GateBasis::xag();
    mch.critical_ratio = 0.2;  // widened critical-path collection
    mch.max_choices_per_node = 6;
    mch.cut_size = 5;
    const Network net = build_mch(detect_xors(balance(opt)), mch);
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kDelay;
    return map_and_check(net, orig, l, p, prep.seconds());
  }});
  flows.push_back({"F6 MCH area", [](const Network& opt, const Network& orig,
                                     const TechLibrary& l) {
    bench::Timer prep;
    MchParams mch;
    mch.candidate_basis = GateBasis::xmg();
    mch.critical_ratio = 0.95;
    const Network net = build_mch(opt, mch);
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kArea;
    return map_and_check(net, orig, l, p, prep.seconds());
  }});

  // Header.
  std::printf("%-11s", "circuit");
  for (const auto& f : flows) std::printf(" | %-13s A/D/t", f.name);
  std::printf("\n");

  std::vector<std::vector<double>> areas(flows.size()), delays(flows.size());
  bool all_ok = true;

  for (auto& bc : circuits::epfl_suite(scale)) {
    const Network original = expand_to_aig(bc.net);
    const Network opt = compress2rs_like(original, GateBasis::aig(), 2);
    std::printf("%-11s", bc.name.c_str());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const Result r = flows[f].run(opt, original, lib);
      areas[f].push_back(r.area);
      delays[f].push_back(r.delay);
      all_ok = all_ok && r.ok;
      std::printf(" | %9.2f %8.1f %5.2f%s", r.area, r.delay, r.time,
                  r.ok ? "" : "!");
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("%-11s", "geomean");
  for (std::size_t f = 0; f < flows.size(); ++f) {
    std::printf(" | %9.2f %8.1f      ", bench::geomean(areas[f]),
                bench::geomean(delays[f]));
  }
  std::printf("\n%-11s", "impr.vs F1");
  for (std::size_t f = 0; f < flows.size(); ++f) {
    std::printf(" | %8.2f%% %7.2f%%      ",
                bench::improvement(bench::geomean(areas[0]),
                                   bench::geomean(areas[f])),
                bench::improvement(bench::geomean(delays[0]),
                                   bench::geomean(delays[f])));
  }
  std::printf("\n\nfunctional checks: %s\n",
              all_ok ? "all netlists simulation-verified against the "
                       "original circuits"
                     : "MISMATCH DETECTED (see rows marked with '!')");
  std::printf(
      "\nExpected shape (paper Table I): MCH balanced improves both area "
      "and delay over F1;\nMCH delay-oriented gives the largest delay gain "
      "(paper: 20.35%%) at an area cost;\nMCH area-oriented gives the "
      "largest area gain (paper: 21.02%%) at a delay cost;\nDCH gains are "
      "smaller than MCH gains.\n");
  return all_ok ? 0 : 1;
}
