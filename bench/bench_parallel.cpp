/// Parallel synthesis bench: wall-clock scaling of the mcs::par drivers.
///
/// Runs par_optimize / par_mch / par_map_lut on a generated multiplier at
/// 1..N worker threads and reports the speedup over the single-threaded
/// run, plus the determinism and equivalence checks that make the numbers
/// meaningful: every thread count must produce a bit-identical result, and
/// the optimized network is verified against the original (random
/// simulation always; full CEC when MCS_PAR_CEC=1 -- SAT-proving a 64-bit
/// multiplier takes a while).
///
/// Environment knobs:
///   MCS_PAR_BITS      multiplier width             (default 64)
///   MCS_PAR_THREADS   max worker threads           (default 4)
///   MCS_PAR_ROUNDS    compress2rs rounds per shard (default 1)
///   MCS_PAR_MAXGATES  partition size target        (default 2000)
///   MCS_PAR_CEC       1 = formal CEC of the result (default 0)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"

using namespace mcs;

namespace {

int env_int(const char* name, int dflt) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x > 0) return x;
  }
  return dflt;
}

}  // namespace

int main() {
  const int bits = env_int("MCS_PAR_BITS", 64);
  const int max_threads = env_int("MCS_PAR_THREADS", 4);
  const int rounds = env_int("MCS_PAR_ROUNDS", 1);
  const int max_gates = env_int("MCS_PAR_MAXGATES", 2000);
  const bool full_cec = env_int("MCS_PAR_CEC", 0) != 0;

  std::string circuit = "multiplier";
  circuit += std::to_string(bits);

  // The realistic pipeline input: the multiplier as a plain AIG (as if read
  // from AIGER), so the optimization shards have actual resynthesis work.
  const Network net = expand_to_aig(circuits::multiplier(bits));
  std::printf("=== mcs::par scaling on multiplier(%d) as AIG: %zu gates, "
              "depth %u ===\n\n",
              bits, net.num_gates(), net.depth());
  std::printf("partition target %d gates, compress2rs rounds %d, hardware "
              "concurrency %zu\n\n",
              max_gates, rounds, ThreadPool::resolve_threads(0));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  bool all_ok = true;
  std::printf("%-10s %8s %10s %10s %9s %12s %8s\n", "driver", "threads",
              "seconds", "speedup", "parts", "gates", "same");

  // --- par_optimize ---------------------------------------------------------
  {
    Network reference;
    double base_seconds = 0.0;
    for (const int t : thread_counts) {
      ParParams params;
      params.num_threads = t;
      params.partition.max_gates = static_cast<std::size_t>(max_gates);
      ParStats stats;
      const bench::Timer timer;
      const Network result =
          par_optimize(net, GateBasis::xmg(), rounds, params, &stats);
      const double seconds = timer.seconds();
      if (t == 1) {
        base_seconds = seconds;
        reference = result;
      }
      const bool same = structurally_identical(result, reference);
      all_ok = all_ok && same;
      const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
      std::printf("%-10s %8d %10.3f %9.2fx %9zu %12zu %8s\n", "par_opt", t,
                  seconds, speedup, stats.num_partitions, result.num_gates(),
                  same ? "yes" : "NO");
      std::fflush(stdout);
      bench::JsonLine("par_optimize")
          .field("circuit", circuit)
          .field("threads", t)
          .field("seconds", seconds)
          .field("speedup", speedup)
          .field("partitions", stats.num_partitions)
          .field("gates", result.num_gates())
          .field("deterministic", same);
    }
    const bool sim_ok = bench::sim_check(net, reference);
    all_ok = all_ok && sim_ok;
    std::printf("  sim-verified vs original: %s\n", sim_ok ? "yes" : "NO");
    if (full_cec) {
      const CecResult cec = check_equivalence(net, reference);
      const bool cec_ok = cec == CecResult::kEquivalent;
      all_ok = all_ok && cec_ok;
      std::printf("  CEC vs original: %s\n",
                  cec_ok ? "equivalent"
                         : cec == CecResult::kUnknown ? "UNKNOWN" : "NOT EQ");
    }
    std::printf("\n");
  }

  // --- par_mch + par_map_lut ------------------------------------------------
  {
    LutNetwork reference;
    Network ref_choices;
    double base_seconds = 0.0;
    for (const int t : thread_counts) {
      ParParams params;
      params.num_threads = t;
      params.partition.max_gates = static_cast<std::size_t>(max_gates);
      const bench::Timer timer;
      const Network choices = par_mch(net, {}, params);
      const LutNetwork luts = par_map_lut(choices, {}, params);
      const double seconds = timer.seconds();
      if (t == 1) {
        base_seconds = seconds;
        reference = luts;
        ref_choices = choices;
      }
      const bool same =
          structurally_identical(choices, ref_choices) && luts == reference;
      all_ok = all_ok && same;
      const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
      std::printf("%-10s %8d %10.3f %9.2fx %9s %12zu %8s\n", "mch+lut", t,
                  seconds, speedup, "-", luts.size(), same ? "yes" : "NO");
      std::fflush(stdout);
      bench::JsonLine("par_mch_map_lut")
          .field("circuit", circuit)
          .field("threads", t)
          .field("seconds", seconds)
          .field("speedup", speedup)
          .field("luts", luts.size())
          .field("lut_depth", static_cast<std::size_t>(luts.depth()))
          .field("deterministic", same);
    }
    const bool sim_ok = bench::sim_check(net, reference);
    all_ok = all_ok && sim_ok;
    std::printf("  sim-verified vs original: %s\n\n", sim_ok ? "yes" : "NO");
  }

  std::printf("Expected shape: speedup approaches the thread count while the "
              "partition\ncount exceeds it (on this machine: %zu hardware "
              "threads); every row must\nreport deterministic output "
              "('same' = yes) or the numbers are meaningless.\n",
              ThreadPool::resolve_threads(0));
  std::printf("checks: %s\n", all_ok ? "all passed" : "FAILED");
  return all_ok ? 0 : 1;
}
