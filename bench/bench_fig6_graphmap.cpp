/// Reproduces Fig. 6 of the paper: MCH-based graph-mapping optimization.
///
/// Per circuit: the XMG network is optimized by iterating plain graph
/// mapping until it reaches a local optimum (the "Baseline").  The
/// MCH-based graph mapper (mixed MIG/XMG choice networks, Fig. 5) then
/// continues from that local optimum.  We report the relative improvements
/// in XMG level/node counts ("MCH for Graph Map") and, after 6-LUT mapping
/// of both results, in LUT level/node counts ("MCH for LUT Map"), plus the
/// geometric means that the paper draws as stars (18.59%/11.56% and
/// 4.71%/7.31%).

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main() {
  const double scale = bench::suite_scale();
  std::printf("=== Fig. 6: graph-mapping optimization with MCH (suite scale "
              "%.2f) ===\n\n", scale);

  GraphMapParams gm;
  gm.target = GateBasis::xmg();
  gm.objective = GraphMapParams::Objective::kSize;

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::mig();  // MIG+XMG mixed choices
  mch_params.critical_ratio = 0.7;

  LutMapParams lut6;
  lut6.lut_size = 6;
  lut6.objective = LutMapParams::Objective::kArea;

  std::printf("%-11s | %-17s | %-17s | %-8s %-8s | %-8s %-8s\n", "circuit",
              "baseline XMG n/l", "MCH XMG n/l", "gm dN%", "gm dL%",
              "lut dN%", "lut dL%");
  std::printf("--------------------------------------------------------------"
              "-----------------------\n");

  std::vector<double> gm_node_ratio, gm_level_ratio, lut_node_ratio,
      lut_level_ratio;
  bool all_ok = true;

  for (auto& bc : circuits::epfl_suite(scale)) {
    const Network original = cleanup(bc.net);
    // Build the XMG starting point and iterate plain graph mapping to a
    // local optimum: the Baseline of Fig. 6.
    Network xmg = graph_map(original, gm);
    int iters = 0;
    const Network baseline = iterate_graph_map(xmg, gm, 12, &iters);

    // MCH-based graph mapping continues from the local optimum.
    const Network escaped =
        iterate_mch_graph_map(baseline, gm, mch_params, 12);

    const bool ok = bench::sim_check(original, baseline) &&
                    bench::sim_check(original, escaped);
    all_ok = all_ok && ok;

    const double n0 = static_cast<double>(baseline.num_gates());
    const double l0 = static_cast<double>(baseline.depth());
    const double n1 = static_cast<double>(escaped.num_gates());
    const double l1 = static_cast<double>(escaped.depth());

    const LutNetwork lut_base = lut_map(baseline, lut6);
    const LutNetwork lut_mch = lut_map(escaped, lut6);
    const double ln0 = static_cast<double>(lut_base.size());
    const double ll0 = static_cast<double>(std::max(1u, lut_base.depth()));
    const double ln1 = static_cast<double>(lut_mch.size());
    const double ll1 = static_cast<double>(std::max(1u, lut_mch.depth()));

    gm_node_ratio.push_back(n1 / n0);
    gm_level_ratio.push_back(l1 / l0);
    lut_node_ratio.push_back(ln1 / ln0);
    lut_level_ratio.push_back(ll1 / ll0);

    std::printf("%-11s | %7.0f / %-7.0f | %7.0f / %-7.0f | %7.2f%% %7.2f%% | "
                "%7.2f%% %7.2f%% %s\n",
                bc.name.c_str(), n0, l0, n1, l1, 100.0 * (1.0 - n1 / n0),
                100.0 * (1.0 - l1 / l0), 100.0 * (1.0 - ln1 / ln0),
                100.0 * (1.0 - ll1 / ll0), ok ? "" : " [SIM-MISMATCH]");
    std::fflush(stdout);
  }

  std::printf("--------------------------------------------------------------"
              "-----------------------\n");
  std::printf("geomean improvements:\n");
  std::printf("  MCH for Graph Map: node %.2f%%, level %.2f%%   (paper: "
              "11.56%%, 18.59%%)\n",
              100.0 * (1.0 - bench::geomean(gm_node_ratio)),
              100.0 * (1.0 - bench::geomean(gm_level_ratio)));
  std::printf("  MCH for LUT Map:   node %.2f%%, level %.2f%%   (paper: "
              "7.31%%, 4.71%%)\n",
              100.0 * (1.0 - bench::geomean(lut_node_ratio)),
              100.0 * (1.0 - bench::geomean(lut_level_ratio)));
  std::printf("\nExpected shape (paper Fig. 6): most circuits improve in both "
              "axes once MCH\nis enabled past the plain graph-mapping local "
              "optimum; none regress.\n");
  std::printf("functional checks: %s\n",
              all_ok ? "all optimized networks simulation-verified"
                     : "MISMATCH");
  return all_ok ? 0 : 1;
}
