/// Ablation A (DESIGN.md): the critical-path ratio r of Algorithm 1.
///
/// r controls which POs seed the critical set: critical nodes get
/// level-oriented candidates, the rest get area-oriented ones.  Sweeping r
/// shows the balance knob the paper exposes: small r -> everything treated
/// as critical (delay bias), large r -> mostly area candidates.

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main() {
  const double scale = bench::suite_scale();
  std::printf("=== Ablation A: MCH critical-path ratio r (suite scale %.2f) "
              "===\n\n", scale);
  const TechLibrary lib = TechLibrary::asap7_mini();

  const char* names[] = {"adder", "bar", "max", "sin", "priority", "voter"};
  std::vector<circuits::BenchmarkCircuit> cases;
  for (auto& bc : circuits::epfl_suite(scale)) {
    for (const char* n : names) {
      if (bc.name == n) cases.push_back(std::move(bc));
    }
  }

  const double ratios[] = {0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::printf("%-10s", "circuit");
  for (const double r : ratios) std::printf(" | r=%-4.2f A/D/choices", r);
  std::printf("\n");

  std::vector<std::vector<double>> areas(6), delays(6);
  for (const auto& bc : cases) {
    const Network opt =
        compress2rs_like(expand_to_aig(bc.net), GateBasis::aig(), 2);
    std::printf("%-10s", bc.name.c_str());
    for (std::size_t i = 0; i < 6; ++i) {
      MchParams mch;
      mch.candidate_basis = GateBasis::xmg();
      mch.critical_ratio = ratios[i];
      MchStats stats;
      const Network net = build_mch(opt, mch, &stats);
      AsicMapParams p;
      p.objective = AsicMapParams::Objective::kDelay;
      const auto m = asic_map(net, lib, p);
      areas[i].push_back(m.area);
      delays[i].push_back(m.delay);
      std::printf(" | %8.2f %7.1f %5zu", m.area, m.delay,
                  stats.num_choices_added);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%-10s", "geomean");
  for (std::size_t i = 0; i < 6; ++i) {
    std::printf(" | %8.2f %7.1f      ", bench::geomean(areas[i]),
                bench::geomean(delays[i]));
  }
  std::printf("\n\nExpected shape: r shifts the candidate mix between "
              "level-oriented (small r) and\narea-oriented (large r) "
              "strategies.  In our reproduction the effect is mild --\nthe "
              "two strategy bundles share DSD and the per-node choice cap "
              "makes them overlap --\nbut the knob moves area/choice counts "
              "monotonically, matching Sec. III-A's claim\nthat r tunes the "
              "design objective of the choice network.\n");
  return 0;
}
