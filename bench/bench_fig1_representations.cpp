/// Reproduces Fig. 1 of the paper: the "Max" circuit converted into
/// different logic representations (AIG / XAG / MIG / XMG) and mapped onto
/// the ASIC library with both objectives.  The point of the figure: no
/// single representation wins both area- and delay-oriented mapping, which
/// motivates evaluating them jointly (the MCH operator).

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main() {
  std::printf("=== Fig. 1: technology mapping of 'Max' per representation "
              "(ASAP7-mini) ===\n\n");
  const int bits = static_cast<int>(32 * bench::suite_scale());
  Network original = expand_to_aig(circuits::max4(bits));
  original = compress2rs_like(original, GateBasis::aig(), 2);

  const TechLibrary lib = TechLibrary::asap7_mini();

  struct Repr {
    const char* name;
    Network net;
  };
  std::vector<Repr> reprs;
  reprs.push_back({"AIG", original});
  reprs.push_back({"XAG", detect_xors(original)});
  {
    GraphMapParams p;
    p.target = GateBasis::mig();
    p.use_choices = false;
    reprs.push_back({"MIG", iterate_graph_map(original, p, 4)});
    p.target = GateBasis::xmg();
    reprs.push_back({"XMG", iterate_graph_map(original, p, 4)});
  }

  std::printf("%-5s %8s %6s | %12s %12s | %12s %12s\n", "repr", "gates",
              "depth", "area(del-or)", "delay(del-or)", "area(ar-or)",
              "delay(ar-or)");
  std::printf("%.*s\n", 86,
              "----------------------------------------------------------"
              "----------------------------");
  for (const auto& r : reprs) {
    AsicMapParams pd;
    pd.objective = AsicMapParams::Objective::kDelay;
    pd.use_choices = false;
    AsicMapParams pa;
    pa.objective = AsicMapParams::Objective::kArea;
    pa.use_choices = false;
    const auto md = asic_map(r.net, lib, pd);
    const auto ma = asic_map(r.net, lib, pa);
    const bool ok = bench::sim_check(original, md) &&
                    bench::sim_check(original, ma);
    std::printf("%-5s %8zu %6u | %12.2f %12.2f | %12.2f %12.2f  %s\n",
                r.name, r.net.num_gates(), r.net.depth(), md.area, md.delay,
                ma.area, ma.delay, ok ? "[sim-ok]" : "[SIM-MISMATCH]");
  }
  std::printf(
      "\nExpected shape (paper Fig. 1): the choice of representation is a "
      "real trade-off --\nunder delay-oriented mapping the AIG structure "
      "gives the fastest netlist while the\nMIG/XMG structure gives a far "
      "smaller one (neither Pareto-dominates), so no single\n"
      "representation should be committed to before mapping.  (Our Max has "
      "no XOR logic,\nso its XAG equals its AIG.)\n");
  return 0;
}
