/// Reproduces Table II of the paper: the EPFL Best-Results-style 6-LUT
/// experiment.  The paper takes the best known 6-LUT netlists, `strash`es
/// them back to (redundant) AIGs, and shows that the MCH-based area mapper
/// -- with XMG candidates merged into the AIG -- recovers netlists at or
/// below the starting LUT counts, where plain re-mapping cannot.
///
/// Our analogue of the "best known result": an aggressively optimized
/// 6-LUT mapping of each generated circuit.  We then rebuild the AIG from
/// that LUT netlist (the paper's strash step, which introduces redundant
/// structure), and compare direct re-mapping against MCH re-mapping.

#include <cstdio>

#include "bench_util.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"

using namespace mcs;

int main() {
  // The record game needs full-size circuits; 1-3 LUT deltas drown in
  // rounding on scaled-down ones.
  const double scale = bench::suite_scale_or(1.0);
  std::printf("=== Table II: best 6-LUT area results (suite scale %.2f) "
              "===\n\n", scale);

  // The paper's Table II rows: sin, sqrt, square, hyp, voter.
  std::vector<circuits::BenchmarkCircuit> cases;
  for (auto& bc : circuits::epfl_suite(scale)) {
    if (bc.name == "sin" || bc.name == "sqrt" || bc.name == "square" ||
        bc.name == "hyp" || bc.name == "voter") {
      cases.push_back(std::move(bc));
    }
  }

  std::printf("%-10s | %-6s %-4s | %-6s %-4s | %-6s %-4s |\n", "circuit",
              "Best", "Lev", "remap", "Lev", "MCH", "Lev");
  std::printf("%-10s | %-11s | %-11s | %-11s |\n", "", "(simulated)",
              "(baseline)", "(ours)");
  std::printf("-----------------------------------------------------\n");

  std::vector<double> best_n, remap_n, mch_n;
  bool all_ok = true;
  for (const auto& bc : cases) {
    // Simulated "best known result": the better of two independent
    // optimize+map attempts (stand-in for the suite's published records).
    const Network opt =
        compress2rs_like(expand_to_aig(bc.net), GateBasis::aig(), 3);
    LutMapParams area6;
    area6.lut_size = 6;
    area6.objective = LutMapParams::Objective::kArea;
    const LutNetwork first = lut_map(opt, area6);

    // `strash` back to an AIG: redundant structure appears.
    const Network strashed = expand_to_aig(lut_network_to_network(first));

    // Plain re-mapping of the strashed AIG.
    const LutNetwork remap = lut_map(strashed, area6);
    const LutNetwork& best = remap.size() < first.size() ? remap : first;

    // MCH-based re-mapping: AIG + XMG candidates, area-focused.
    MchParams mch_params;
    mch_params.candidate_basis = GateBasis::xmg();
    mch_params.critical_ratio = 0.95;
    const Network mch = build_mch(strashed, mch_params);
    const LutNetwork ours = lut_map(mch, area6);

    const bool ok = bench::sim_check(opt, remap) && bench::sim_check(opt, ours);
    all_ok = all_ok && ok;
    std::printf("%-10s | %6zu %4u | %6zu %4u | %6zu %4u | %s\n",
                bc.name.c_str(), best.size(), best.depth(), remap.size(),
                remap.depth(), ours.size(), ours.depth(),
                ok ? "[sim-ok]" : "[SIM-MISMATCH]");
    best_n.push_back(static_cast<double>(best.size()));
    remap_n.push_back(static_cast<double>(remap.size()));
    mch_n.push_back(static_cast<double>(ours.size()));
    std::fflush(stdout);
  }

  std::printf("-----------------------------------------------------\n");
  std::printf("geomean LUTs: best %.1f | remap %.1f | MCH %.1f\n",
              bench::geomean(best_n), bench::geomean(remap_n),
              bench::geomean(mch_n));
  std::printf("MCH vs direct remap: %.2f%% fewer LUTs\n",
              bench::improvement(bench::geomean(remap_n),
                                 bench::geomean(mch_n)));
  std::printf("\nExpected shape (paper Table II): direct re-mapping of the "
              "strashed AIG is no\nbetter than the starting point, while the "
              "MCH mapper reaches LUT counts at or\nbelow it (the paper sets "
              "new records by 1-3 LUTs this way).\n");
  std::printf("functional checks: %s\n",
              all_ok ? "all mappings simulation-verified" : "MISMATCH");
  return all_ok ? 0 : 1;
}
